"""Correctness and robustness of the model-artifact cache.

The contract mirrors the trace cache's: cached and uncached model builds
are **bit-identical** (same array values, dtypes, everything the forecast
can observe); no reader — thread or worker process — can ever observe a
partially written ``.npz`` (atomic ``os.replace`` publication); corrupted
or truncated disk entries are treated as misses and healed by a clean
rebuild; and the :func:`shared_rate_model` memoiser no longer thrashes on
sweeps wider than the old hard-wired eight entries.
"""

from __future__ import annotations

import concurrent.futures
import hashlib
import os

import numpy as np
import pytest

from repro.core.rate_model import (
    DEFAULT_MODEL_ARTIFACTS,
    ModelArtifactCache,
    RateModel,
    RateModelParams,
    clear_shared_models,
    default_model_cache_dir,
    model_cache,
    model_cache_directory,
    model_key,
    shared_rate_model,
)

#: small, fast-to-build, *non-default* parameters used throughout
SMALL = RateModelParams(num_bins=16, max_rate=200.0, sigma=120.0, forecast_ticks=3)
PATHS = 150

#: the arrays (by RateModel attribute) one artifact must restore exactly
ARRAY_ATTRS = ("transition", "cumulative_cdfs", "_cdf_matrix", "_cdf_cols", "_cdf_coarse")


@pytest.fixture
def scoped_cache(tmp_path):
    """The process-wide model cache, pointed at a private tmp dir."""
    from repro.cache import CacheStats

    cache = model_cache()
    saved = (cache.directory, cache.use_disk, cache.enabled, cache.stats)
    cache.directory = str(tmp_path)
    cache.use_disk = True
    cache.enabled = True
    cache.stats = CacheStats()  # fresh counters per test
    cache.clear()
    yield cache
    cache.directory, cache.use_disk, cache.enabled, cache.stats = saved
    cache.clear()


def _assert_models_bit_identical(a: RateModel, b: RateModel) -> None:
    for name in ARRAY_ATTRS:
        left, right = getattr(a, name), getattr(b, name)
        assert left.dtype == right.dtype, name
        assert np.array_equal(left, right), name
    belief = a.uniform_prior()
    assert np.array_equal(
        a.cumulative_quantile(belief, 0.05), b.cumulative_quantile(belief, 0.05)
    )


# ------------------------------------------------------------- bit-identity


def test_cache_on_and_off_builds_are_bit_identical(scoped_cache):
    """The acceptance bar, on a non-default parameter set."""
    scoped_cache.enabled = False
    fresh = RateModel(SMALL, PATHS)
    scoped_cache.enabled = True
    stored = RateModel(SMALL, PATHS)  # miss: builds and writes the .npz
    hit = RateModel(SMALL, PATHS)  # memory hit
    scoped_cache.clear()
    disk = RateModel(SMALL, PATHS)  # disk hit
    assert scoped_cache.stats.misses == 1
    assert scoped_cache.stats.memory_hits == 1
    assert scoped_cache.stats.disk_hits == 1
    for cached in (stored, hit, disk):
        _assert_models_bit_identical(fresh, cached)


def test_memory_hits_share_the_frozen_arrays(scoped_cache):
    first = RateModel(SMALL, PATHS)
    second = RateModel(SMALL, PATHS)
    assert second.transition is first.transition  # shared, not copied
    with pytest.raises(ValueError):
        first.transition[0, 0] = 0.5  # read-only: cross-model poisoning impossible


# ---------------------------------------------------------------- the key


def test_model_key_covers_params_paths_and_version():
    base = model_key(SMALL, PATHS)
    assert len(base) == 64  # sha256 hex
    assert model_key(SMALL, PATHS) == base
    from dataclasses import replace

    assert model_key(replace(SMALL, sigma=121.0), PATHS) != base
    assert model_key(replace(SMALL, tick=0.021), PATHS) != base
    assert model_key(SMALL, PATHS + 1) != base


# ------------------------------------------------------------- disk layer


def test_default_cache_dir_honours_env_override(monkeypatch, tmp_path):
    monkeypatch.setenv("REPRO_MODEL_CACHE_DIR", str(tmp_path / "elsewhere"))
    assert default_model_cache_dir() == str(tmp_path / "elsewhere")


def test_model_cache_directory_context_restores_everything(tmp_path):
    cache = model_cache()
    directory_before = cache.directory
    env_before = os.environ.get("REPRO_MODEL_CACHE_DIR")
    with model_cache_directory(str(tmp_path)) as scoped:
        assert scoped is cache
        assert cache.directory == str(tmp_path)
        assert os.environ["REPRO_MODEL_CACHE_DIR"] == str(tmp_path)
    # Regression: the cache itself (not just the env var) is restored, so
    # a later build cannot silently write into a deleted temp directory.
    assert cache.directory == directory_before
    assert os.environ.get("REPRO_MODEL_CACHE_DIR") == env_before


def test_from_env_tolerates_malformed_max(monkeypatch, caplog):
    """Unparseable or non-positive knobs warn and use the default — never an
    import-time crash and never a silent clamp to 1 (which looked like a
    mysterious perf cliff)."""
    import logging

    for bad in ("banana", "0", "-5"):
        caplog.clear()
        monkeypatch.setenv("REPRO_MODEL_CACHE_MAX", bad)
        with caplog.at_level(logging.WARNING, logger="repro.cache"):
            built = ModelArtifactCache.from_env(
                "REPRO_MODEL_CACHE", default_max=DEFAULT_MODEL_ARTIFACTS
            )
        assert built.max_entries == DEFAULT_MODEL_ARTIFACTS
        assert "REPRO_MODEL_CACHE_MAX" in caplog.text  # names the culprit
    # An unset (or empty) knob is not a misconfiguration: no warning.
    caplog.clear()
    monkeypatch.delenv("REPRO_MODEL_CACHE_MAX", raising=False)
    with caplog.at_level(logging.WARNING, logger="repro.cache"):
        built = ModelArtifactCache.from_env(
            "REPRO_MODEL_CACHE", default_max=DEFAULT_MODEL_ARTIFACTS
        )
    assert built.max_entries == DEFAULT_MODEL_ARTIFACTS
    assert caplog.text == ""


def test_shared_model_capacity_warns_and_defaults_on_bad_env(monkeypatch, caplog):
    """REPRO_SHARED_MODEL_MAX goes through the same warn-and-default parse."""
    import logging

    from repro.core.rate_model import DEFAULT_SHARED_MODELS, shared_model_capacity

    for bad in ("garbage", "-3", "0"):
        caplog.clear()
        monkeypatch.setenv("REPRO_SHARED_MODEL_MAX", bad)
        with caplog.at_level(logging.WARNING, logger="repro.cache"):
            assert shared_model_capacity() == DEFAULT_SHARED_MODELS
        assert "REPRO_SHARED_MODEL_MAX" in caplog.text
    monkeypatch.setenv("REPRO_SHARED_MODEL_MAX", "5")
    assert shared_model_capacity() == 5


def test_truncated_artifact_falls_back_to_a_clean_rebuild(scoped_cache, tmp_path):
    reference = RateModel(SMALL, PATHS)
    (path,) = [p for p in tmp_path.iterdir() if p.suffix == ".npz"]
    payload = path.read_bytes()
    path.write_bytes(payload[: len(payload) // 2])  # a torn write, simulated
    scoped_cache.clear()
    rebuilt = RateModel(SMALL, PATHS)
    assert scoped_cache.stats.misses == 2  # fell back to a rebuild
    _assert_models_bit_identical(reference, rebuilt)
    # The rebuild healed the disk entry for the next cold reader.
    cold = ModelArtifactCache(directory=str(tmp_path))
    scoped_cache.clear()
    assert cold.read_artifact(str(path))["transition"].shape == (16, 16)


def test_garbage_artifact_falls_back_to_a_clean_rebuild(scoped_cache, tmp_path):
    reference = RateModel(SMALL, PATHS)
    (path,) = [p for p in tmp_path.iterdir() if p.suffix == ".npz"]
    path.write_bytes(b"not a zip archive at all")
    scoped_cache.clear()
    rebuilt = RateModel(SMALL, PATHS)
    assert scoped_cache.stats.misses == 2
    _assert_models_bit_identical(reference, rebuilt)


def test_artifact_with_missing_arrays_is_rejected(scoped_cache, tmp_path):
    RateModel(SMALL, PATHS)
    (path,) = [p for p in tmp_path.iterdir() if p.suffix == ".npz"]
    np.savez(path, transition=np.zeros((2, 2)))  # foreign/stale content
    scoped_cache.clear()
    model = RateModel(SMALL, PATHS)  # rejected -> rebuilt, not a 2x2 matrix
    assert model.transition.shape == (16, 16)
    assert scoped_cache.stats.misses == 2


def test_disabled_cache_writes_nothing(scoped_cache, tmp_path):
    scoped_cache.enabled = False
    RateModel(SMALL, PATHS)
    assert list(tmp_path.iterdir()) == []


# ------------------------------------------------------------- concurrency


def _racing_build(args):
    directory, index = args
    # Each worker re-points the process-wide cache at the shared tmp dir
    # with a cold memory layer, so every one of them races the same .npz.
    from repro.core.rate_model import configure_model_cache

    configure_model_cache(directory=directory, use_disk=True, enabled=True)
    model = RateModel(SMALL, PATHS)
    digest = hashlib.sha256()
    digest.update(np.ascontiguousarray(model.transition).tobytes())
    digest.update(np.ascontiguousarray(model.cumulative_cdfs).tobytes())
    return (index, digest.hexdigest())


def test_concurrent_processes_racing_one_key_see_whole_artifacts(tmp_path):
    """Atomic replace: racing writers, no torn reads, one published file."""
    cache = model_cache()
    saved_enabled = cache.enabled
    cache.enabled = False
    try:
        reference = RateModel(SMALL, PATHS)  # built outside any cache
    finally:
        cache.enabled = saved_enabled
    digest = hashlib.sha256()
    digest.update(np.ascontiguousarray(reference.transition).tobytes())
    digest.update(np.ascontiguousarray(reference.cumulative_cdfs).tobytes())
    expected = digest.hexdigest()

    with concurrent.futures.ProcessPoolExecutor(max_workers=2) as pool:
        outcomes = list(
            pool.map(_racing_build, [(str(tmp_path), i) for i in range(4)])
        )
    assert [d for _, d in outcomes] == [expected] * 4
    # Exactly one published file, whatever the race's winner order was.
    names = [p.name for p in tmp_path.iterdir()]
    assert names == [f"{model_key(SMALL, PATHS)}.npz"]


# ------------------------------------------- shared_rate_model regression


def test_shared_model_capacity_survives_wide_sweeps(monkeypatch):
    """Regression: >8 distinct swept params no longer evict and rebuild."""
    monkeypatch.delenv("REPRO_SHARED_MODEL_MAX", raising=False)
    clear_shared_models()
    try:
        from dataclasses import replace

        swept = [replace(SMALL, sigma=100.0 + i) for i in range(10)]
        models = [shared_rate_model(params) for params in swept]
        # The old lru_cache(maxsize=8) would have evicted the first two by
        # now; every instance must still be the memoised one.
        for params, model in zip(swept, models):
            assert shared_rate_model(params) is model
    finally:
        clear_shared_models()


def test_shared_model_capacity_is_configurable(monkeypatch):
    from dataclasses import replace

    monkeypatch.setenv("REPRO_SHARED_MODEL_MAX", "2")
    clear_shared_models()
    try:
        one, two, three = (replace(SMALL, sigma=150.0 + i) for i in range(3))
        first = shared_rate_model(one)
        second = shared_rate_model(two)
        third = shared_rate_model(three)
        # Capacity 2: the least-recently-used entry was evicted ...
        assert shared_rate_model(three) is third
        assert shared_rate_model(two) is second
        assert shared_rate_model(one) is not first
        # ... and nonsense values fall back to the default capacity.
        monkeypatch.setenv("REPRO_SHARED_MODEL_MAX", "banana")
        assert shared_rate_model(one) is shared_rate_model(one)
    finally:
        clear_shared_models()


def test_shared_default_model_is_memoised():
    assert shared_rate_model() is shared_rate_model()
