"""Tests for the congestion-control algorithms (Reno, Cubic, Vegas, Compound, LEDBAT)."""

import pytest

from repro.baselines.compound import CompoundSender
from repro.baselines.cubic import CubicSender
from repro.baselines.ledbat import LedbatSender
from repro.baselines.reno import RenoSender
from repro.baselines.vegas import VegasSender


class FakeCtx:
    def __init__(self):
        self.sent = []
        self.time = 0.0
        self.name = "fake"

    def now(self):
        return self.time

    def send(self, packet):
        packet.sent_at = self.time
        self.sent.append(packet)


def _prime(sender, rtt=0.05):
    """Start the sender and give it an initial RTT estimate."""
    ctx = FakeCtx()
    sender.start(ctx)
    sender.rtt.update(rtt)
    return ctx


class TestReno:
    def test_slow_start_doubles_per_window(self):
        sender = RenoSender(initial_cwnd=2)
        _prime(sender)
        sender.on_ack(2, 0.05, 1.0)
        assert sender.cwnd == pytest.approx(4.0)

    def test_congestion_avoidance_linear(self):
        sender = RenoSender(initial_cwnd=10)
        _prime(sender)
        sender.ssthresh = 5.0
        before = sender.cwnd
        sender.on_ack(1, 0.05, 1.0)
        assert sender.cwnd == pytest.approx(before + 1.0 / before)

    def test_loss_halves_window(self):
        sender = RenoSender(initial_cwnd=20)
        _prime(sender)
        sender.on_loss(1.0)
        assert sender.cwnd == pytest.approx(10.0)
        assert sender.ssthresh == pytest.approx(10.0)

    def test_timeout_resets_to_one(self):
        sender = RenoSender(initial_cwnd=20)
        _prime(sender)
        sender.on_timeout(1.0)
        assert sender.cwnd == 1.0


class TestCubic:
    def test_slow_start_growth(self):
        sender = CubicSender(initial_cwnd=2)
        _prime(sender)
        sender.on_ack(2, 0.05, 1.0)
        assert sender.cwnd == pytest.approx(4.0)

    def test_multiplicative_decrease_uses_beta(self):
        sender = CubicSender(initial_cwnd=100)
        _prime(sender)
        sender.on_loss(1.0)
        assert sender.cwnd == pytest.approx(70.0)
        assert sender.w_max == pytest.approx(100.0)

    def test_fast_convergence_lowers_w_max_on_repeated_loss(self):
        sender = CubicSender(initial_cwnd=100)
        _prime(sender)
        sender.on_loss(1.0)
        first_w_max = sender.w_max
        sender.on_loss(2.0)
        assert sender.w_max < first_w_max

    def test_window_grows_towards_cubic_target_after_loss(self):
        sender = CubicSender(initial_cwnd=100)
        _prime(sender)
        sender.ssthresh = 1.0  # force congestion-avoidance mode
        sender.on_loss(1.0)
        window_after_loss = sender.cwnd
        now = 1.0
        for i in range(2000):
            now += 0.01
            sender.on_ack(1, 0.05, now)
        # Well past K the cubic function exceeds the old maximum.
        assert sender.cwnd > window_after_loss
        assert sender.cwnd > sender.w_max * 0.9

    def test_timeout_resets_window(self):
        sender = CubicSender(initial_cwnd=50)
        _prime(sender)
        sender.on_timeout(1.0)
        assert sender.cwnd == 1.0


class TestVegas:
    def test_holds_window_inside_alpha_beta_band(self):
        sender = VegasSender(initial_cwnd=30)
        _prime(sender, rtt=0.1)
        sender.in_slow_start = False
        # base RTT 0.1; actual RTT chosen so ~3 segments sit queued
        # (between alpha=2 and beta=4): expected - actual backlog = 3.
        rtt = 0.1 * 30 / (30 - 3)
        before = sender.cwnd
        sender.on_ack(1, rtt, 1.0)
        assert sender.cwnd == pytest.approx(before)

    def test_grows_when_backlog_below_alpha(self):
        sender = VegasSender(initial_cwnd=30)
        _prime(sender, rtt=0.1)
        sender.in_slow_start = False
        before = sender.cwnd
        sender.on_ack(1, 0.1, 1.0)  # no queueing at all
        assert sender.cwnd > before

    def test_shrinks_when_backlog_above_beta(self):
        sender = VegasSender(initial_cwnd=30)
        _prime(sender, rtt=0.1)
        sender.in_slow_start = False
        before = sender.cwnd
        rtt = 0.1 * 30 / (30 - 10)  # ~10 segments queued
        sender.on_ack(1, rtt, 1.0)
        assert sender.cwnd < before

    def test_leaves_slow_start_when_queue_builds(self):
        sender = VegasSender(initial_cwnd=10)
        _prime(sender, rtt=0.1)
        assert sender.in_slow_start
        rtt = 0.1 * 10 / (10 - 5)
        sender.on_ack(1, rtt, 1.0)
        assert not sender.in_slow_start


class TestCompound:
    def test_effective_window_includes_delay_component(self):
        sender = CompoundSender(initial_cwnd=10)
        _prime(sender, rtt=0.1)
        sender.ssthresh = 1.0
        sender.dwnd = 5.0
        assert sender.effective_window() == pytest.approx(sender.cwnd + 5.0)

    def test_delay_window_grows_on_short_queues(self):
        sender = CompoundSender(initial_cwnd=20)
        _prime(sender, rtt=0.1)
        sender.ssthresh = 1.0
        sender.on_ack(1, 0.1, 1.0)  # no queueing
        assert sender.dwnd > 0.0

    def test_delay_window_retreats_when_queues_build(self):
        sender = CompoundSender(initial_cwnd=100)
        _prime(sender, rtt=0.1)
        sender.ssthresh = 1.0
        sender.dwnd = 50.0
        rtt = 0.1 * 150 / (150 - 60)  # ~60 segments queued > gamma
        sender.on_ack(1, rtt, 1.0)
        assert sender.dwnd < 50.0

    def test_loss_halves_loss_window(self):
        sender = CompoundSender(initial_cwnd=40)
        _prime(sender)
        sender.on_loss(1.0)
        assert sender.cwnd == pytest.approx(20.0)


class TestLedbat:
    def test_grows_when_queueing_delay_below_target(self):
        sender = LedbatSender(initial_cwnd=10)
        _prime(sender)
        sender.on_delay_sample(0.02, 1.0)
        sender.on_delay_sample(0.03, 1.1)  # 10 ms of queueing, target is 100 ms
        before = sender.cwnd
        sender.on_ack(1, 0.05, 1.2)
        assert sender.cwnd > before

    def test_shrinks_when_queueing_delay_exceeds_target(self):
        sender = LedbatSender(initial_cwnd=10)
        _prime(sender)
        sender.on_delay_sample(0.02, 1.0)
        sender.on_delay_sample(0.32, 1.1)  # 300 ms of queueing
        before = sender.cwnd
        sender.on_ack(1, 0.4, 1.2)
        assert sender.cwnd < before

    def test_base_delay_tracks_minimum(self):
        sender = LedbatSender()
        _prime(sender)
        sender.on_delay_sample(0.05, 1.0)
        sender.on_delay_sample(0.02, 2.0)
        sender.on_delay_sample(0.09, 3.0)
        assert sender._latest_queueing_delay == pytest.approx(0.07)

    def test_loss_halves_window(self):
        sender = LedbatSender(initial_cwnd=16)
        _prime(sender)
        sender.on_loss(1.0)
        assert sender.cwnd == pytest.approx(8.0)

    def test_window_never_below_two(self):
        sender = LedbatSender(initial_cwnd=2)
        _prime(sender)
        sender.on_delay_sample(0.02, 1.0)
        sender.on_delay_sample(0.52, 1.1)
        for _ in range(50):
            sender.on_ack(1, 0.6, 2.0)
        assert sender.cwnd >= 2.0
