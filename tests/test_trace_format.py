"""Tests for the on-disk trace format."""

import pytest

from repro.traces.format import read_trace, trace_duration, trace_mean_rate, write_trace


def test_roundtrip(tmp_path):
    path = tmp_path / "trace.txt"
    times = [0.001, 0.0026, 0.010, 1.5]
    write_trace(path, times)
    back = read_trace(path)
    assert back == [0.001, 0.003, 0.010, 1.5]  # rounded to whole milliseconds


def test_write_sorts_unsorted_input(tmp_path):
    path = tmp_path / "trace.txt"
    write_trace(path, [0.5, 0.1, 0.3])
    assert read_trace(path) == [0.1, 0.3, 0.5]


def test_write_rejects_negative_times(tmp_path):
    with pytest.raises(ValueError):
        write_trace(tmp_path / "bad.txt", [-0.5])


def test_read_ignores_comments_and_blank_lines(tmp_path):
    path = tmp_path / "trace.txt"
    path.write_text("# header\n\n10\n20\n\n# trailing\n30\n")
    assert read_trace(path) == [0.010, 0.020, 0.030]


def test_read_rejects_garbage(tmp_path):
    path = tmp_path / "trace.txt"
    path.write_text("10\nnot-a-number\n")
    with pytest.raises(ValueError, match="not-a-number"):
        read_trace(path)


def test_read_rejects_negative_timestamps(tmp_path):
    path = tmp_path / "trace.txt"
    path.write_text("-5\n")
    with pytest.raises(ValueError):
        read_trace(path)


def test_trace_duration():
    assert trace_duration([0.1, 2.5, 1.0]) == 2.5
    assert trace_duration([]) == 0.0


def test_trace_mean_rate():
    # 10 MTU opportunities over 1 second = 10 * 1500 * 8 bits/s.
    times = [i / 10 for i in range(1, 11)]
    assert trace_mean_rate(times) == pytest.approx(10 * 1500 * 8)
    assert trace_mean_rate([]) == 0.0
