"""Tests for protocol hosts and contexts."""

import pytest

from repro.simulation.endpoints import Host, Protocol
from repro.simulation.event_loop import EventLoop
from repro.simulation.packet import Packet


class EchoProtocol(Protocol):
    """Test protocol: records deliveries and echoes every third packet."""

    tick_interval = 0.1

    def __init__(self):
        self.received = []
        self.ticks = 0
        self.stopped_at = None

    def on_packet(self, packet, now):
        self.received.append((now, packet))

    def on_tick(self, now):
        self.ticks += 1

    def stop(self, now):
        self.stopped_at = now


def test_host_starts_protocol_and_ticks():
    loop = EventLoop()
    protocol = EchoProtocol()
    host = Host(loop, protocol, transmit=lambda p: None)
    host.start()
    loop.run_until(1.05)
    assert protocol.ticks == 10


def test_host_stop_cancels_ticks_and_notifies():
    loop = EventLoop()
    protocol = EchoProtocol()
    host = Host(loop, protocol, transmit=lambda p: None)
    host.start()
    loop.run_until(0.35)
    host.stop()
    loop.run_until(1.0)
    assert protocol.ticks == 3
    assert protocol.stopped_at == pytest.approx(0.35)


def test_host_cannot_start_twice():
    loop = EventLoop()
    host = Host(loop, EchoProtocol(), transmit=lambda p: None)
    host.start()
    with pytest.raises(RuntimeError):
        host.start()


def test_deliver_records_and_forwards():
    loop = EventLoop()
    protocol = EchoProtocol()
    host = Host(loop, protocol, transmit=lambda p: None)
    host.start()
    packet = Packet(size=500)
    host.deliver(packet, 1.0)
    assert host.bytes_received == 500
    assert len(host.received_log) == 1
    assert protocol.received[0][1] is packet
    assert packet.delivered_at == 1.0


def test_deliver_after_stop_is_logged_but_not_forwarded():
    loop = EventLoop()
    protocol = EchoProtocol()
    host = Host(loop, protocol, transmit=lambda p: None)
    host.start()
    host.stop()
    host.deliver(Packet(), 2.0)
    assert len(host.received_log) == 1
    assert protocol.received == []


def test_context_send_stamps_time_and_counts():
    loop = EventLoop()
    sent = []
    protocol = EchoProtocol()
    host = Host(loop, protocol, transmit=sent.append)
    host.start()
    loop.run_until(0.5)
    packet = Packet(size=100)
    host.ctx.send(packet)
    assert sent == [packet]
    assert packet.sent_at == pytest.approx(0.5)
    assert host.ctx.bytes_sent == 100
    assert host.ctx.packets_sent == 1


def test_protocol_without_tick_interval_never_ticks():
    class Quiet(Protocol):
        tick_interval = None

        def __init__(self):
            self.ticks = 0

        def on_packet(self, packet, now):
            pass

        def on_tick(self, now):
            self.ticks += 1

    loop = EventLoop()
    protocol = Quiet()
    host = Host(loop, protocol, transmit=lambda p: None)
    host.start()
    loop.run_until(5.0)
    assert protocol.ticks == 0
