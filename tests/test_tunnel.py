"""Tests for SproutTunnel: flow queues, scheduler, ingress/egress."""

import pytest

from repro.core.connection import SproutConfig
from repro.simulation.packet import Packet
from repro.tunnel.flow_queue import FlowQueue, FlowQueueSet
from repro.tunnel.scheduler import RoundRobinScheduler
from repro.tunnel.tunnel import HEADER_TUNNEL_FLOW, TunnelEgress, make_tunnel


class TestFlowQueue:
    def test_fifo_and_byte_accounting(self):
        queue = FlowQueue("a")
        queue.push(Packet(size=100, headers={"i": 1}))
        queue.push(Packet(size=200, headers={"i": 2}))
        assert queue.byte_length == 300
        assert queue.pop().headers["i"] == 1
        assert queue.byte_length == 200

    def test_drop_head_marks_packet(self):
        queue = FlowQueue("a")
        packet = Packet()
        queue.push(packet)
        dropped = queue.drop_head()
        assert dropped is packet and packet.dropped
        assert queue.dropped == 1

    def test_pop_empty_returns_none(self):
        assert FlowQueue("a").pop() is None


class TestFlowQueueSet:
    def test_queues_created_lazily(self):
        queues = FlowQueueSet()
        queues.enqueue("skype", Packet(size=100))
        queues.enqueue("cubic", Packet(size=1500))
        assert set(queues.flows()) == {"skype", "cubic"}
        assert queues.total_bytes == 1600

    def test_limit_drops_from_head_of_longest_queue(self):
        queues = FlowQueueSet()
        queues.set_limit(5000)
        for i in range(10):
            queues.enqueue("cubic", Packet(size=1500, headers={"i": i}))
        queues.enqueue("skype", Packet(size=300))
        assert queues.total_bytes <= 5000 + 1500
        assert queues.dropped_for_limit > 0
        # The interactive flow's packet survived; the bulk flow was trimmed.
        assert len(queues.queue_for("skype")) == 1
        assert queues.queue_for("cubic").dropped > 0

    def test_no_limit_means_no_drops(self):
        queues = FlowQueueSet()
        for _ in range(100):
            queues.enqueue("cubic", Packet())
        assert queues.dropped_for_limit == 0

    def test_negative_limit_rejected(self):
        with pytest.raises(ValueError):
            FlowQueueSet().set_limit(-1)


class TestRoundRobinScheduler:
    def test_alternates_between_flows(self):
        queues = FlowQueueSet()
        for i in range(3):
            queues.enqueue("a", Packet(size=100, headers={"f": "a", "i": i}))
            queues.enqueue("b", Packet(size=100, headers={"f": "b", "i": i}))
        scheduler = RoundRobinScheduler(queues)
        taken = scheduler.take(400)
        flows = [p.headers["f"] for p in taken]
        assert len(taken) == 4
        assert flows.count("a") == 2 and flows.count("b") == 2

    def test_respects_budget(self):
        queues = FlowQueueSet()
        for _ in range(10):
            queues.enqueue("a", Packet(size=1500))
        scheduler = RoundRobinScheduler(queues)
        taken = scheduler.take(4000)
        assert sum(p.size for p in taken) <= 4000
        assert len(taken) == 2

    def test_zero_budget_takes_nothing(self):
        queues = FlowQueueSet()
        queues.enqueue("a", Packet())
        assert RoundRobinScheduler(queues).take(0) == []

    def test_oversized_head_is_skipped_not_lost(self):
        queues = FlowQueueSet()
        queues.enqueue("big", Packet(size=1500))
        queues.enqueue("small", Packet(size=100))
        scheduler = RoundRobinScheduler(queues)
        taken = scheduler.take(200)
        assert [p.size for p in taken] == [100]
        assert len(queues.queue_for("big")) == 1


class TestTunnel:
    def test_make_tunnel_wires_sender_source(self):
        tunnel = make_tunnel()
        assert tunnel.sender_protocol.packet_source is not None
        assert isinstance(tunnel.receiver_protocol, TunnelEgress)

    def test_accepted_packets_tagged_with_flow(self):
        tunnel = make_tunnel()
        packet = Packet(size=400)
        tunnel.ingress.accept("skype", packet)
        assert packet.headers[HEADER_TUNNEL_FLOW] == "skype"
        assert tunnel.ingress.queues.total_bytes == 400

    def test_window_fill_pulls_from_queues(self):
        tunnel = make_tunnel()
        for _ in range(5):
            tunnel.ingress.accept("cubic", Packet(size=1000))
        taken = tunnel.ingress._fill_window(now=1.0, budget_bytes=2500)
        assert sum(p.size for p in taken) <= 2500
        assert len(taken) == 2

    def test_egress_delivers_to_registered_handler(self):
        tunnel = make_tunnel(SproutConfig(use_ewma=True))
        delivered = []
        tunnel.egress.register_flow("skype", lambda p, t: delivered.append((t, p)))

        class Ctx:
            def now(self):
                return 0.0

            def send(self, packet):
                pass

        tunnel.egress.start(Ctx())
        packet = Packet(size=400, headers={HEADER_TUNNEL_FLOW: "skype"})
        # Stamp Sprout data headers the way the tunnel's sender would.
        packet.headers["sprout_seq_bytes"] = 400
        packet.headers["sprout_throwaway_bytes"] = 0
        packet.headers["sprout_time_to_next"] = 0.0
        tunnel.egress.on_packet(packet, 0.5)
        assert delivered and delivered[0][1] is packet
        assert tunnel.egress.delivered_log[0][1] == "skype"

    def test_egress_ignores_untunnelled_sprout_filler(self):
        tunnel = make_tunnel(SproutConfig(use_ewma=True))
        hits = []
        tunnel.egress.register_flow("skype", lambda p, t: hits.append(p))

        class Ctx:
            def now(self):
                return 0.0

            def send(self, packet):
                pass

        tunnel.egress.start(Ctx())
        filler = Packet(size=1500, headers={"sprout_seq_bytes": 1500,
                                            "sprout_throwaway_bytes": 0,
                                            "sprout_time_to_next": 0.0})
        tunnel.egress.on_packet(filler, 0.5)
        assert hits == []
