"""Property suite for the analytic screening tier (repro.experiments.analytic).

Hypothesis drives the closed-form predictors over their whole input ranges
and asserts the qualitative shape the screening tier relies on:

* the PFTK Reno and CUBIC response functions are non-increasing in both
  the loss rate and the round-trip time;
* the CSA transfer-time model is non-increasing in the segment size (this
  is the property the model's deliberate steady-state-window deviation
  buys — see :func:`repro.experiments.analytic.csa_transfer_time`);
* the Sprout moment closure always returns finite, strictly positive
  moments, and its conservative rate never exceeds the forecast mean.

Frozen ``@example`` cases pin the regime boundaries that bit during
development: the ``T0 = max(MIN_RTO, 2*RTT)`` kink at ``rtt = 0.1``, the
``min(1, 3*sqrt(3bp/8))`` timeout saturation near ``p = 8/27``, and the
``ceil(nbytes/mss)`` packetisation steps of the CSA model.

The consistency block at the bottom asserts the analytic constants still
match the simulator's — if a baseline constant changes, the predictors
(and the oracle tolerance calibrated against them) must be revisited.
"""

from __future__ import annotations

import math

from hypothesis import example, given, settings
from hypothesis import strategies as st

from repro.baselines.base import SEGMENTS_PER_ACK, RttEstimator
from repro.baselines.cubic import CubicSender
from repro.baselines.reno import RenoSender
from repro.experiments.analytic import (
    ACKS_PER_SEGMENT,
    CUBIC_BETA,
    CUBIC_C,
    csa_transfer_time,
    cubic_throughput_pps,
    reno_throughput_pps,
    sprout_conservative_rate_pps,
    sprout_forecast_moments,
)
from repro.core.rate_model import RateModelParams

# One relaxed profile for the whole module: the predictors are pure float
# math, but the CI box is slow enough that the default 200ms deadline flakes.
COMMON = settings(deadline=None, max_examples=200)

LOSSES = st.floats(min_value=1e-6, max_value=0.6)
RTTS = st.floats(min_value=1e-3, max_value=2.0)
RATES = st.floats(min_value=1.0, max_value=5000.0)
#: multiplicative step used to build ordered input pairs
STEPS = st.floats(min_value=1.0, max_value=10.0)


# ----------------------------------------------------- response functions


@COMMON
@given(loss=LOSSES, step=STEPS, rtt=RTTS)
# timeout-term saturation boundary: min(1, 3*sqrt(3bp/8)) hits 1 at p = 8/27
@example(loss=8.0 / 27.0 - 1e-9, step=1.0 + 1e-6, rtt=0.05)
@example(loss=1e-6, step=10.0, rtt=2.0)
def test_reno_throughput_non_increasing_in_loss(loss, step, rtt):
    worse = min(0.999, loss * step)
    assert reno_throughput_pps(worse, rtt) <= reno_throughput_pps(loss, rtt) * (
        1.0 + 1e-12
    )


@COMMON
@given(loss=LOSSES, rtt=RTTS, step=STEPS)
# the T0 = max(MIN_RTO, 2*rtt) kink sits at rtt = MIN_RTO / 2 = 0.1
@example(loss=0.02, rtt=0.1 - 1e-9, step=1.0 + 1e-6)
@example(loss=0.6, rtt=1e-3, step=10.0)
def test_reno_throughput_non_increasing_in_rtt(loss, rtt, step):
    assert reno_throughput_pps(loss, rtt * step) <= reno_throughput_pps(
        loss, rtt
    ) * (1.0 + 1e-12)


@COMMON
@given(loss=LOSSES, step=STEPS, rtt=RTTS)
# the cubic/friendly crossover: cubic dominates at long RTT and low loss
@example(loss=1e-4, step=2.0, rtt=1.0)
@example(loss=8.0 / 27.0 - 1e-9, step=1.0 + 1e-6, rtt=0.05)
def test_cubic_throughput_non_increasing_in_loss(loss, step, rtt):
    worse = min(0.999, loss * step)
    assert cubic_throughput_pps(worse, rtt) <= cubic_throughput_pps(loss, rtt) * (
        1.0 + 1e-12
    )


@COMMON
@given(loss=LOSSES, rtt=RTTS, step=STEPS)
@example(loss=0.02, rtt=0.1 - 1e-9, step=1.0 + 1e-6)
@example(loss=1e-4, rtt=0.5, step=1.5)
def test_cubic_throughput_non_increasing_in_rtt(loss, rtt, step):
    assert cubic_throughput_pps(loss, rtt * step) <= cubic_throughput_pps(
        loss, rtt
    ) * (1.0 + 1e-12)


@COMMON
@given(loss=LOSSES, rtt=RTTS)
def test_cubic_at_least_tcp_friendly(loss, rtt):
    """The implementation's TCP-friendly region guarantees >= Reno."""
    assert cubic_throughput_pps(loss, rtt) >= reno_throughput_pps(loss, rtt) * (
        1.0 - 1e-12
    )


@COMMON
@given(loss=LOSSES, rtt=RTTS, wmax=st.floats(min_value=2.0, max_value=1000.0))
def test_window_bound_caps_both_responses(loss, rtt, wmax):
    bound = wmax / rtt
    assert reno_throughput_pps(loss, rtt, wmax=wmax) <= bound * (1.0 + 1e-12)
    assert cubic_throughput_pps(loss, rtt, wmax=wmax) <= bound * (1.0 + 1e-12)


# --------------------------------------------------------- CSA transfer time


@COMMON
@given(
    nbytes=st.floats(min_value=1.0, max_value=1e8),
    mss=st.floats(min_value=100.0, max_value=9000.0),
    step=STEPS,
    rtt=RTTS,
    loss=st.floats(min_value=0.0, max_value=0.6),
)
# packetisation boundary: ceil(2896/1447) = 3 segments, ceil(2896/1448) = 2
@example(nbytes=2896.0, mss=1447.0, step=1448.0 / 1447.0, rtt=0.1, loss=0.02)
# mss beyond the transfer size: a single segment either way
@example(nbytes=1000.0, mss=2000.0, step=4.0, rtt=0.05, loss=0.1)
@example(nbytes=1e8, mss=100.0, step=10.0, rtt=2.0, loss=0.6)
# found by Hypothesis: subnormal loss underflows 1-loss to 1.0 and made the
# steady-state algebra overflow to nan before the lossless-limit guard
@example(nbytes=1.0, mss=100.0, step=1.0, rtt=1.0, loss=2.225073858507e-311)
def test_csa_transfer_time_non_increasing_in_mss(nbytes, mss, step, rtt, loss):
    bigger = mss * step
    assert csa_transfer_time(nbytes, bigger, rtt, loss) <= csa_transfer_time(
        nbytes, mss, rtt, loss
    ) * (1.0 + 1e-12)


@COMMON
@given(
    nbytes=st.floats(min_value=1.0, max_value=1e8),
    mss=st.floats(min_value=100.0, max_value=9000.0),
    rtt=RTTS,
    loss=st.floats(min_value=0.0, max_value=0.6),
)
# found by Hypothesis: see the matching frozen example above
@example(nbytes=1.0, mss=100.0, rtt=1.0, loss=2.2250738585e-313)
def test_csa_transfer_time_finite_and_positive(nbytes, mss, rtt, loss):
    elapsed = csa_transfer_time(nbytes, mss, rtt, loss)
    assert math.isfinite(elapsed)
    assert elapsed > 0.0


# ----------------------------------------------------- Sprout moment closure


@COMMON
@given(
    rate=RATES,
    sigma=st.floats(min_value=0.0, max_value=500.0),
    tick=st.floats(min_value=1e-3, max_value=0.5),
    ticks=st.integers(min_value=1, max_value=500),
)
@example(rate=1.0, sigma=0.0, tick=1e-3, ticks=1)
@example(rate=5000.0, sigma=500.0, tick=0.5, ticks=500)
def test_sprout_moments_finite_and_positive(rate, sigma, tick, ticks):
    params = RateModelParams(sigma=sigma, tick=tick)
    mean, variance = sprout_forecast_moments(rate, params, horizon_ticks=ticks)
    assert math.isfinite(mean) and mean > 0.0
    assert math.isfinite(variance) and variance > 0.0
    # the Poisson floor: even a noiseless rate model keeps count variance
    assert variance >= mean * (1.0 - 1e-12)


@COMMON
@given(
    rate=RATES,
    sigma=st.floats(min_value=0.0, max_value=500.0),
    confidence=st.floats(min_value=0.5, max_value=0.999),
)
def test_sprout_conservative_rate_bounded_by_mean(rate, sigma, confidence):
    params = RateModelParams(sigma=sigma)
    cautious = sprout_conservative_rate_pps(rate, params, confidence=confidence)
    assert math.isfinite(cautious)
    assert 0.0 <= cautious <= rate * (1.0 + 1e-12)


# -------------------------------------------- simulator-constant consistency


def test_analytic_constants_match_simulator():
    """The predictors are calibrated against these exact baseline constants.

    If any assert here fires, the analytic model (and ORACLE_TOLERANCE,
    calibrated in docs/analytic.md) must be re-derived, not just the
    constant updated.
    """
    assert RenoSender.ALPHA == 1.0
    assert RenoSender.BETA == 0.5
    assert CubicSender.C == CUBIC_C
    assert CubicSender.BETA == CUBIC_BETA
    assert SEGMENTS_PER_ACK == 1
    assert ACKS_PER_SEGMENT == 1.0
    assert RttEstimator.MIN_RTO == 0.2
