"""Tests for the discrete-event loop."""

import pytest

from repro.simulation.event_loop import EventLoop


def test_events_fire_in_time_order():
    loop = EventLoop()
    fired = []
    loop.schedule_at(2.0, lambda: fired.append("b"))
    loop.schedule_at(1.0, lambda: fired.append("a"))
    loop.schedule_at(3.0, lambda: fired.append("c"))
    loop.run_until(5.0)
    assert fired == ["a", "b", "c"]


def test_same_time_events_fire_in_fifo_order():
    loop = EventLoop()
    fired = []
    for label in "abcde":
        loop.schedule_at(1.0, fired.append, label)
    loop.run_until(1.0)
    assert fired == list("abcde")


def test_run_until_advances_clock_to_end_time():
    loop = EventLoop()
    loop.schedule_at(0.5, lambda: None)
    loop.run_until(2.0)
    assert loop.now() == 2.0


def test_events_after_end_time_do_not_fire():
    loop = EventLoop()
    fired = []
    loop.schedule_at(1.0, lambda: fired.append("early"))
    loop.schedule_at(3.0, lambda: fired.append("late"))
    loop.run_until(2.0)
    assert fired == ["early"]
    loop.run_until(4.0)
    assert fired == ["early", "late"]


def test_schedule_after_uses_relative_delay():
    loop = EventLoop()
    times = []
    loop.schedule_after(1.0, lambda: times.append(loop.now()))
    loop.run_until(1.5)
    loop.schedule_after(1.0, lambda: times.append(loop.now()))
    loop.run_until(3.0)
    assert times == [1.0, 2.5]


def test_scheduling_in_the_past_is_rejected():
    loop = EventLoop()
    loop.run_until(5.0)
    with pytest.raises(ValueError):
        loop.schedule_at(4.0, lambda: None)
    with pytest.raises(ValueError):
        loop.schedule_after(-1.0, lambda: None)


def test_cancelled_events_do_not_fire():
    loop = EventLoop()
    fired = []
    event = loop.schedule_at(1.0, lambda: fired.append("x"))
    event.cancel()
    loop.run_until(2.0)
    assert fired == []
    assert loop.events_processed == 0


def test_events_can_schedule_more_events():
    loop = EventLoop()
    fired = []

    def chain(depth: int) -> None:
        fired.append(depth)
        if depth < 3:
            loop.schedule_after(1.0, chain, depth + 1)

    loop.schedule_at(0.0, chain, 0)
    loop.run_until(10.0)
    assert fired == [0, 1, 2, 3]


def test_run_until_rejects_past_end_time():
    loop = EventLoop()
    loop.run_until(3.0)
    with pytest.raises(ValueError):
        loop.run_until(2.0)


def test_run_all_respects_max_events():
    loop = EventLoop()
    fired = []
    for i in range(10):
        loop.schedule_at(float(i), fired.append, i)
    loop.run_all(max_events=4)
    assert fired == [0, 1, 2, 3]
