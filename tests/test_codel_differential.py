"""Differential test: CoDelQueue vs. the Nichols & Jacobson pseudocode.

``ReferenceCoDel`` below is a deliberately literal transliteration of the
dequeue-side pseudocode from "Controlling Queue Delay" (Nichols & Jacobson,
ACM Queue 10(5), 2012) — same variable names, same control flow, no reuse
of the production code.  Hypothesis then drives both implementations over
randomized arrival/drain schedules (bursts, trickles, idle gaps, standing
queues) and asserts that every externally observable decision is identical:
which packets are delivered, which are dropped, and in what order.

Divergences this suite pinned down in the production queue (now fixed):

* the re-entry rule for the sqrt control law used a ``count - last_count``
  variant (and pre-incremented ``count`` for the triggering drop) instead
  of the pseudocode's ``count > 2 ? count - 2 : 1``;
* emptying the queue while dropping the first packet of a new dropping
  episode left the state machine out of the dropping state (the pseudocode
  stays in it, with ``drop_next`` scheduled).
"""

from __future__ import annotations

from dataclasses import dataclass
from math import sqrt
from typing import List, Optional, Tuple

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.simulation.packet import Packet
from repro.simulation.queues import CoDelQueue

TARGET = CoDelQueue.TARGET
INTERVAL = CoDelQueue.INTERVAL
MAX_PACKET = CoDelQueue.MAX_PACKET


# ------------------------------------------------- reference transliteration


@dataclass
class _Entry:
    """One queued packet of the reference implementation."""

    ident: int
    size: int
    tstamp: float


class ReferenceCoDel:
    """Line-by-line transliteration of the published CoDel pseudocode."""

    def __init__(
        self,
        target: float = TARGET,
        interval: float = INTERVAL,
        maxpacket: int = MAX_PACKET,
    ) -> None:
        self.target_ = target
        self.interval_ = interval
        self.maxpacket_ = maxpacket
        self.queue_: List[_Entry] = []
        self.first_above_time_ = 0.0
        self.drop_next_ = 0.0
        self.count_ = 0
        self.dropping_ = False
        self.delivered: List[int] = []
        self.dropped: List[int] = []

    def bytes(self) -> int:
        return sum(entry.size for entry in self.queue_)

    def enqueue(self, ident: int, size: int, now: float) -> None:
        self.queue_.append(_Entry(ident, size, now))

    def control_law(self, t: float) -> float:
        return t + self.interval_ / sqrt(self.count_)

    def dodeque(self, now: float) -> Tuple[Optional[_Entry], bool]:
        ok_to_drop = False
        if not self.queue_:
            self.first_above_time_ = 0.0
            return None, ok_to_drop
        p = self.queue_.pop(0)
        sojourn_time = now - p.tstamp
        if sojourn_time < self.target_ or self.bytes() <= self.maxpacket_:
            # went below - stay below for at least interval
            self.first_above_time_ = 0.0
        else:
            if self.first_above_time_ == 0.0:
                # just went above from below. if still above at
                # first_above_time, will say it's ok to drop
                self.first_above_time_ = now + self.interval_
            elif now >= self.first_above_time_:
                ok_to_drop = True
        return p, ok_to_drop

    def drop(self, p: _Entry) -> None:
        self.dropped.append(p.ident)

    def deque(self, now: float) -> Optional[int]:
        p, ok_to_drop = self.dodeque(now)
        if p is None:
            # queue is empty - we can't be dropping
            self.dropping_ = False
            return None
        if self.dropping_:
            if not ok_to_drop:
                # sojourn time below target - leave dropping state
                self.dropping_ = False
            elif now >= self.drop_next_:
                while now >= self.drop_next_ and self.dropping_:
                    self.drop(p)
                    self.count_ += 1
                    p, ok_to_drop = self.dodeque(now)
                    if not ok_to_drop:
                        # leave dropping state
                        self.dropping_ = False
                    else:
                        # schedule the next drop
                        self.drop_next_ = self.control_law(self.drop_next_)
                if p is None:
                    return None
        elif ok_to_drop and (
            now - self.drop_next_ < self.interval_
            or now - self.first_above_time_ >= self.interval_
        ):
            self.drop(p)
            p, ok_to_drop = self.dodeque(now)
            self.dropping_ = True
            # If min went above target close to when it last went below,
            # assume that the drop rate that controlled the queue on the
            # last cycle is a good starting point.
            if now - self.drop_next_ < self.interval_:
                self.count_ = self.count_ - 2 if self.count_ > 2 else 1
            else:
                self.count_ = 1
            self.drop_next_ = self.control_law(now)
            if p is None:
                return None
        if p is None:
            return None
        self.delivered.append(p.ident)
        return p.ident


# ----------------------------------------------------------------- schedules

#: one schedule step: (time_delta, operation); operation is a packet size to
#: enqueue, or None for a dequeue attempt
Step = Tuple[float, Optional[int]]

# Time deltas quantised around CoDel's constants so schedules actually cross
# the target/interval thresholds instead of living entirely on one side.
_deltas = st.sampled_from(
    [0.0, 0.001, 0.002, 0.005, 0.010, 0.020, 0.050, 0.090, 0.100, 0.110, 0.250]
)
_sizes = st.sampled_from([100, 500, 1000, 1500])
_ops = st.one_of(st.none(), _sizes)
_flat_schedules = st.lists(st.tuples(_deltas, _ops), min_size=1, max_size=120)


@st.composite
def _phased_schedules(draw) -> List[Step]:
    """Burst / drain / trickle phases: the traffic shapes that actually walk
    CoDel through its dropping-state transitions (a flat random mix almost
    never sustains a standing queue long enough to re-enter the dropping
    state, which is where the historical divergences lived)."""
    schedule: List[Step] = []
    for _ in range(draw(st.integers(2, 6))):
        kind = draw(st.sampled_from(["burst", "drain", "trickle"]))
        if kind == "burst":
            size = draw(_sizes)
            schedule.extend([(0.001, size)] * draw(st.integers(5, 40)))
        elif kind == "drain":
            delta = draw(st.sampled_from([0.005, 0.010, 0.020, 0.030]))
            schedule.extend([(delta, None)] * draw(st.integers(5, 50)))
        else:
            for _ in range(draw(st.integers(10, 40))):
                delta = draw(st.sampled_from([0.002, 0.005, 0.010, 0.020]))
                op = draw(st.sampled_from([None, None, 500, 1500]))
                schedule.append((delta, op))
    return schedule


_schedules = st.one_of(_flat_schedules, _phased_schedules())


def _run_both(schedule: List[Step]):
    """Drive production and reference queues over one schedule."""
    production = CoDelQueue()
    reference = ReferenceCoDel()
    delivered: List[int] = []
    dropped: List[int] = []
    production.on_drop = lambda packet: dropped.append(packet.headers["i"])

    now = 0.0
    for ident, (delta, op) in enumerate(schedule):
        now += delta
        if op is not None:
            production.enqueue(Packet(size=op, headers={"i": ident}), now)
            reference.enqueue(ident, op, now)
        else:
            packet = production.dequeue(now)
            if packet is not None:
                delivered.append(packet.headers["i"])
            reference.deque(now)
    return production, reference, delivered, dropped


@settings(max_examples=250, deadline=None)
@given(_schedules)
def test_drop_decisions_match_reference(schedule):
    """Every delivery and every drop matches the pseudocode, in order."""
    production, reference, delivered, dropped = _run_both(schedule)
    assert delivered == reference.delivered
    assert dropped == reference.dropped
    assert production.drops == len(reference.dropped)


@settings(max_examples=250, deadline=None)
@given(_schedules)
def test_control_law_state_matches_reference(schedule):
    """The sqrt control-law state agrees after any schedule (so future
    decisions agree too, beyond the schedule horizon)."""
    production, reference, _, _ = _run_both(schedule)
    assert production._dropping == reference.dropping_
    assert production._count == reference.count_
    assert production._drop_next == reference.drop_next_
    assert production._first_above_time == reference.first_above_time_


def _reentry_divergence_schedule() -> List[Step]:
    """The frozen counterexample for the re-entry (``count - 2``) divergence.

    Found by randomized differential search against the pre-fix queue and
    shrunk: a bufferbloat burst, a long drain that enters (and leaves) the
    dropping state, then a mixed trickle whose standing queue re-enters the
    dropping state within an ``interval`` of the pending ``drop_next``.
    At that point the old ``count - last_count`` rule resumed the sqrt
    control law at a higher drop rate than the pseudocode's ``count - 2``,
    shifting every subsequent drop decision.
    """
    schedule: List[Step] = [(0.001, 1500)] * 35
    schedule += [(0.01, None)] * 32
    schedule += [(0.001, 1500)] * 3
    schedule += [
        (0.002, None), (0.02, None), (0.01, 500), (0.005, 500), (0.005, 500),
        (0.01, 500), (0.005, 500), (0.01, None), (0.002, 1500), (0.02, 500),
        (0.01, None), (0.005, None), (0.005, 1500), (0.02, 1500),
    ]
    schedule += [(0.01, None)] * 5
    return schedule


def test_reentry_resumes_control_law_per_pseudocode():
    """Regression for the divergences listed in the module docstring."""
    production, reference, delivered, dropped = _run_both(_reentry_divergence_schedule())
    assert dropped == reference.dropped
    assert delivered == reference.delivered
    # The schedule must actually cycle the dropping state for the re-entry
    # rule to matter at all.
    assert len(reference.dropped) >= 2
    assert production._count == reference.count_
    assert production._drop_next == reference.drop_next_
