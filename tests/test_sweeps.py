"""Tests for the scenario sweep engine (repro.experiments.sweeps).

The headline property (the PR's acceptance bar): a sweep executed through
the full fast path — flattened batch, shared worker pool, shared trace
cache, batched event loop — is bit-identical to running every expanded cell
one by one, serially, with the trace cache disabled.
"""

from __future__ import annotations

import pickle

import pytest

from repro.experiments.parallel import active_pool, shared_pool
from repro.experiments.registry import get_scheme
from repro.experiments.runner import RunConfig, run_scheme_on_link
from repro.experiments.sweeps import (
    SWEEP_PARAMETERS,
    GridSpec,
    SweepSpec,
    expand_grid,
    expand_sweep,
    get_sweep_parameter,
    pareto_frontier,
    render_grid,
    render_grid_frontiers,
    render_sweep,
    run_grid,
    run_sweep,
    run_sweep_suite,
    sweep_parameter_names,
)
from repro.traces.cache import global_cache
from repro.traces.networks import get_link, link_names

TINY = RunConfig(duration=8.0, warmup=2.0)
LINK = "AT&T LTE uplink"


# ----------------------------------------------------------------- expansion


def test_sweep_parameter_registry_is_complete():
    assert set(sweep_parameter_names()) == {
        "loss", "sigma", "tick", "outage", "scale", "flows", "tunnelled",
        "aqm", "qlimit", "codel_target", "codel_interval", "rtt", "repeat",
    }
    for name in sweep_parameter_names():
        assert get_sweep_parameter(name).description


def test_repeat_axis_is_inert_on_simulated_cells():
    """The live-harness repetition index passes a simulated cell through
    unchanged (the emulator is deterministic) but rejects nonsense values."""
    expand = get_sweep_parameter("repeat").expand
    config = RunConfig(duration=6.0, warmup=1.0)
    cell = expand("Vegas", "AT&T LTE uplink", config, 2.0)
    assert cell == ("Vegas", "AT&T LTE uplink", config)
    for bad in (0.0, -1.0, 1.5):
        with pytest.raises(ValueError, match="repeat"):
            expand("Vegas", "AT&T LTE uplink", config, bad)


def test_unknown_parameter_is_rejected_with_valid_names():
    with pytest.raises(KeyError, match="loss"):
        get_sweep_parameter("bandwidth")
    with pytest.raises(KeyError):
        SweepSpec(parameter="bandwidth", values=(1.0,))


def test_spec_defaults_links_to_all_eight():
    spec = SweepSpec(parameter="loss", values=(0.0, 0.01))
    assert list(spec.links) == link_names()
    assert spec.cells_per_value == len(link_names())


def test_expand_sweep_is_value_major_scheme_then_link():
    spec = SweepSpec(
        parameter="loss",
        values=(0.0, 0.1),
        schemes=("Vegas", "Skype"),
        links=(LINK, "Verizon LTE uplink"),
    )
    cells = expand_sweep(spec, TINY)
    assert len(cells) == 8
    assert [c[2].loss_rate for c in cells] == [0.0] * 4 + [0.1] * 4
    assert [c[0] for c in cells[:4]] == ["Vegas", "Vegas", "Skype", "Skype"]
    # The base config is never mutated, only replaced.
    assert TINY.loss_rate == 0.0


def test_loss_values_validated():
    spec = SweepSpec(parameter="loss", values=(1.5,), links=(LINK,))
    with pytest.raises(ValueError, match="loss rate"):
        expand_sweep(spec, TINY)


def test_sigma_and_tick_variants_are_picklable_sprout_schemes():
    for parameter, value in (("sigma", 120.0), ("tick", 0.04)):
        spec = SweepSpec(parameter=parameter, values=(value,), links=(LINK,))
        ((scheme, _, _),) = expand_sweep(spec, TINY)
        assert scheme.category == "sprout"
        assert str(value).rstrip("0").rstrip(".") in scheme.name or f"{value:g}" in scheme.name
        pickle.loads(pickle.dumps(scheme))  # must ship to worker processes


def test_sigma_and_tick_variants_start_from_the_base_spec_config():
    """Sweeping a non-default Sprout spec must keep its other knobs."""
    from repro.experiments.registry import sprout_with_confidence

    base = sprout_with_confidence(0.25)
    (scheme, _, _) = SWEEP_PARAMETERS["sigma"].expand(base, LINK, TINY, 120.0)
    variant_config = scheme.factory.args[0]
    assert variant_config.confidence == 0.25  # preserved, not reset to 0.95
    assert variant_config.model_params.sigma == 120.0
    assert "Sprout (25%)" in scheme.name and "sigma=120" in scheme.name

    (scheme, _, _) = SWEEP_PARAMETERS["tick"].expand(base, LINK, TINY, 0.04)
    variant_config = scheme.factory.args[0]
    assert variant_config.confidence == 0.25
    assert variant_config.tick_interval == 0.04
    assert variant_config.model_params.tick == 0.04


def test_sigma_sweep_rejects_unrecoverable_sprout_specs():
    """An opaque closure spec is refused, not silently re-run at defaults."""
    from repro.experiments.registry import SchemeSpec

    opaque = SchemeSpec(name="Sprout (opaque)", factory=lambda: None, category="sprout")
    with pytest.raises(ValueError, match="cannot recover"):
        SWEEP_PARAMETERS["sigma"].expand(opaque, LINK, TINY, 100.0)


def test_sigma_sweep_rejects_non_sprout_schemes():
    spec = SweepSpec(parameter="sigma", values=(100.0,), schemes=("Vegas",), links=(LINK,))
    with pytest.raises(ValueError, match="does not apply"):
        expand_sweep(spec, TINY)
    ewma = SweepSpec(
        parameter="tick", values=(0.04,), schemes=("Sprout-EWMA",), links=(LINK,)
    )
    with pytest.raises(ValueError, match="does not apply"):
        expand_sweep(ewma, TINY)


def test_outage_and_scale_modify_a_copy_of_the_link():
    pristine = get_link(LINK)
    for parameter, value in (("outage", 3.0), ("scale", 0.5)):
        spec = SweepSpec(parameter=parameter, values=(value,), links=(LINK,))
        ((_, link, _),) = expand_sweep(spec, TINY)
        assert link.name == pristine.name  # same identity for reporting
        assert link.config != pristine.config
    assert get_link(LINK).config == pristine.config  # registry untouched


def test_aqm_and_qlimit_set_the_link_queue_config():
    from repro.simulation.queues import AQM_CODEL, AQM_DROP_TAIL

    pristine = get_link(LINK)
    spec = GridSpec(
        parameters=("aqm", "qlimit"), values=((1.0,), (30000.0,)), links=(LINK,)
    )
    ((_, link, _),) = expand_grid(spec, TINY)
    assert link.queue.aqm == AQM_CODEL
    assert link.queue.byte_limit == 30000
    assert link.config == pristine.config  # channel (and trace) untouched
    assert get_link(LINK).queue is None  # registry untouched

    # qlimit 0 is the deep-buffer default; qlimit alone leaves aqm inherit.
    spec = GridSpec(parameters=("qlimit",), values=((0.0,),), links=(LINK,))
    ((_, link, _),) = expand_grid(spec, TINY)
    assert link.queue.byte_limit is None
    assert link.queue.aqm is None

    # The axes compose in either order onto one QueueConfig.
    spec = GridSpec(
        parameters=("qlimit", "aqm"), values=((15000.0,), (0.0,)), links=(LINK,)
    )
    ((_, link, _),) = expand_grid(spec, TINY)
    assert link.queue.aqm == AQM_DROP_TAIL
    assert link.queue.byte_limit == 15000


def test_aqm_and_qlimit_value_validation():
    for parameter, bad in (("aqm", 2.0), ("aqm", 0.5), ("qlimit", -1.0), ("qlimit", 0.5)):
        spec = GridSpec(parameters=(parameter,), values=((bad,),), links=(LINK,))
        with pytest.raises(ValueError):
            expand_grid(spec, TINY)


def test_aqm_axis_matches_the_registry_codel_scheme():
    """aqm = 1 over Cubic measures exactly what Cubic-CoDel measures."""
    spec = GridSpec(
        parameters=("aqm",), values=((1.0,),), schemes=("Cubic",), links=(LINK,)
    )
    (cell,) = expand_grid(spec, TINY)
    from repro.experiments.runner import run_scheme_on_link

    swept = run_scheme_on_link(*cell).as_dict()
    registry = run_scheme_on_link("Cubic-CoDel", LINK, TINY).as_dict()
    del swept["scheme"], registry["scheme"]
    assert swept == registry


def test_codel_parameter_axes_set_the_link_queue_config():
    from repro.simulation.queues import AQM_CODEL, CoDelQueue

    # The CoDel knobs ride QueueConfig and compose with aqm in either order.
    spec = GridSpec(
        parameters=("aqm", "codel_target", "codel_interval"),
        values=((1.0,), (0.010,), (0.200,)),
        links=(LINK,),
    )
    ((_, link, _),) = expand_grid(spec, TINY)
    assert link.queue.aqm == AQM_CODEL
    assert link.queue.codel_target == 0.010
    assert link.queue.codel_interval == 0.200
    assert get_link(LINK).queue is None  # registry untouched

    # Alone, the knobs leave the discipline inherited (drop-tail cells are
    # inert; a CoDel scheme such as Cubic-CoDel picks the tuning up).
    spec = GridSpec(parameters=("codel_target",), values=((0.020,),), links=(LINK,))
    ((_, link, _),) = expand_grid(spec, TINY)
    assert link.queue.aqm is None
    assert link.queue.codel_target == 0.020
    assert link.queue.codel_interval == CoDelQueue.INTERVAL


def test_codel_parameter_axes_value_validation():
    for parameter, bad in (
        ("codel_target", 0.0),
        ("codel_target", -0.005),
        ("codel_interval", 0.0),
        ("codel_interval", -1.0),
    ):
        spec = GridSpec(parameters=(parameter,), values=((bad,),), links=(LINK,))
        with pytest.raises(ValueError):
            expand_grid(spec, TINY)


def test_codel_target_sweep_changes_codel_cells_only():
    """A lax target behaves like drop-tail; a strict one drops earlier."""
    from repro.experiments.runner import run_scheme_on_link

    def measure(parameters, values, scheme):
        spec = GridSpec(
            parameters=parameters, values=values, schemes=(scheme,), links=(LINK,)
        )
        (cell,) = expand_grid(spec, TINY)
        return run_scheme_on_link(*cell).as_dict()

    # On a drop-tail cell the knob is inert: bit-identical to the bare cell.
    assert measure(("codel_target",), ((0.001,),), "Cubic") == measure(
        ("qlimit",), ((0.0,),), "Cubic"
    )
    # On a CoDel cell it is live: strict vs lax targets measure differently,
    # whether CoDel comes from the aqm axis or from the scheme itself.
    strict = measure(("aqm", "codel_target"), ((1.0,), (0.001,)), "Cubic")
    lax = measure(("aqm", "codel_target"), ((1.0,), (10.0,)), "Cubic")
    assert strict != lax
    scheme_strict = measure(("codel_target",), ((0.001,),), "Cubic-CoDel")
    scheme_lax = measure(("codel_target",), ((10.0,),), "Cubic-CoDel")
    assert scheme_strict != scheme_lax


def test_qlimit_bounds_bufferbloat_for_cubic():
    from repro.experiments.runner import run_scheme_on_link

    deep = GridSpec(
        parameters=("qlimit",), values=((0.0,),), schemes=("Cubic",), links=(LINK,)
    )
    bounded = GridSpec(
        parameters=("qlimit",), values=((30000.0,),), schemes=("Cubic",), links=(LINK,)
    )
    (deep_cell,) = expand_grid(deep, TINY)
    (bounded_cell,) = expand_grid(bounded, TINY)
    deep_result = run_scheme_on_link(*deep_cell)
    bounded_result = run_scheme_on_link(*bounded_cell)
    assert bounded_result.self_inflicted_delay_s < deep_result.self_inflicted_delay_s
    assert bounded_result.extra["forward_queue_drops"] > 0
    assert deep_result.extra["forward_queue_drops"] == 0


def test_modified_links_get_their_own_traces():
    """The cache keys on channel content, so variants cannot collide."""
    from repro.traces.networks import link_trace

    pristine = get_link(LINK)
    spec = SweepSpec(parameter="scale", values=(0.25,), links=(LINK,))
    ((_, scaled, _),) = expand_sweep(spec, TINY)
    base_trace = link_trace(pristine, duration=5.0)
    scaled_trace = link_trace(scaled, duration=5.0)
    assert base_trace != scaled_trace
    assert len(scaled_trace) < len(base_trace)  # quarter the capacity


# ----------------------------------------------------------------- execution


def test_sweep_results_bit_identical_to_uncached_serial_cells(monkeypatch):
    """Acceptance bar: fast path == cell-by-cell uncached serial run."""
    spec = SweepSpec(
        parameter="loss",
        values=(0.0, 0.02, 0.1),
        schemes=("Vegas", "Skype"),
        links=(LINK,),
    )
    fast = run_sweep(spec, config=TINY, jobs=2)

    monkeypatch.setattr(global_cache(), "enabled", False)
    for point in fast.points:
        for row in point.results:
            reference = run_scheme_on_link(
                row.scheme,
                row.link,
                RunConfig(
                    duration=TINY.duration, warmup=TINY.warmup, loss_rate=point.value
                ),
            )
            assert row.as_dict() == reference.as_dict()


def test_grid_cells_report_their_model_params_for_prewarming():
    """The cache-shaped fan-out: distinct swept model params, found up front."""
    from repro.core.rate_model import RateModelParams
    from repro.experiments.parallel import required_model_params

    spec = GridSpec(
        parameters=("sigma",), values=((120.0, 140.0),), links=(LINK,)
    )
    params = required_model_params(expand_grid(spec, TINY))
    assert [p.sigma for p in params] == [120.0, 140.0]

    # Duplicates collapse: two links per sigma still yield one entry each.
    two_links = GridSpec(
        parameters=("sigma",),
        values=((120.0, 140.0),),
        links=(LINK, "Verizon LTE uplink"),
    )
    assert required_model_params(expand_grid(two_links, TINY)) == params

    # Plain Sprout cells need the default model; non-Sprout cells need none.
    assert required_model_params([("Sprout", LINK, TINY)]) == [RateModelParams()]
    assert required_model_params([("Cubic", LINK, TINY)]) == []
    assert required_model_params([("Sprout-EWMA", LINK, TINY)]) == []

    # A sigma × flows grid carries the swept model into the tunnel's Sprout;
    # a direct (untunnelled) scenario has no Sprout to warm.
    tunnelled = GridSpec(
        parameters=("sigma", "flows"), values=((120.0,), (2.0,)), links=(LINK,)
    )
    (tunnel_params,) = required_model_params(expand_grid(tunnelled, TINY))
    assert tunnel_params.sigma == 120.0
    direct = GridSpec(
        parameters=("flows", "tunnelled"), values=((2.0,), (0.0,)), links=(LINK,)
    )
    assert required_model_params(expand_grid(direct, TINY)) == []

    # With the model cache disabled, prewarming is a no-op: parent-side
    # builds could not reach the workers, so the seed behaviour is kept.
    from repro.core.rate_model import model_cache
    from repro.experiments.parallel import prewarm_models

    cache = model_cache()
    saved = cache.enabled
    cache.enabled = False
    try:
        assert prewarm_models([("Sprout", LINK, TINY)]) == []
    finally:
        cache.enabled = saved


def test_run_sweep_groups_points_by_value():
    spec = SweepSpec(
        parameter="scale", values=(1.0, 0.5), schemes=("Vegas",), links=(LINK,)
    )
    data = run_sweep(spec, config=TINY)
    assert [p.value for p in data.points] == [1.0, 0.5]
    assert all(len(p.results) == 1 for p in data.points)
    assert data.for_value(0.5) is data.points[1]
    with pytest.raises(KeyError):
        data.for_value(2.0)
    # scale=1.0 is the calibrated link: identical to a plain run.
    plain = run_scheme_on_link("Vegas", LINK, TINY)
    assert data.for_value(1.0).results[0].as_dict() == plain.as_dict()


def test_scale_one_equals_identity_and_halving_reduces_throughput():
    spec = SweepSpec(
        parameter="scale", values=(1.0, 0.5), schemes=("Vegas",), links=(LINK,)
    )
    data = run_sweep(spec, config=TINY)
    full = data.for_value(1.0).results[0]
    half = data.for_value(0.5).results[0]
    assert half.throughput_bps < full.throughput_bps


def test_suite_runs_inside_one_shared_pool():
    observed_pools = []

    def spy(_result) -> None:
        observed_pools.append(active_pool())

    specs = [
        SweepSpec(parameter="loss", values=(0.0,), schemes=("Vegas",), links=(LINK,)),
        SweepSpec(parameter="scale", values=(1.0,), schemes=("Vegas",), links=(LINK,)),
    ]
    suite = run_sweep_suite(specs, config=TINY, progress=spy, jobs=2)
    assert len(suite) == 2
    assert len(observed_pools) == 2
    assert observed_pools[0] is not None
    assert observed_pools[0] is observed_pools[1]  # the same pool, reused
    assert active_pool() is None  # and closed afterwards


def test_suite_serial_when_jobs_none():
    specs = [
        SweepSpec(parameter="loss", values=(0.0,), schemes=("Vegas",), links=(LINK,))
    ]
    suite = run_sweep_suite(specs, config=TINY)
    plain = run_scheme_on_link("Vegas", LINK, TINY)
    assert suite[0].points[0].results[0].as_dict() == plain.as_dict()


@pytest.mark.perf
def test_sigma_and_tick_sweeps_run_end_to_end():
    """The model-rebuilding sweeps actually emulate (Monte-Carlo warm-up
    per non-default parameter set makes this too slow for the smoke job)."""
    for parameter, value in (("sigma", 150.0), ("tick", 0.04)):
        spec = SweepSpec(parameter=parameter, values=(value,), links=(LINK,))
        data = run_sweep(spec, config=RunConfig(duration=6.0, warmup=1.0))
        ((point),) = data.points
        (row,) = point.results
        assert row.scheme.startswith("Sprout [")
        assert row.throughput_bps > 0
        assert row.link == LINK


# ----------------------------------------------------------------- rendering


def test_render_sweep_lists_every_value_and_scheme():
    spec = SweepSpec(
        parameter="loss", values=(0.0, 0.05), schemes=("Vegas",), links=(LINK,)
    )
    text = render_sweep(run_sweep(spec, config=TINY))
    assert "Sweep — loss" in text
    assert "loss = 0" in text
    assert "loss = 0.05" in text
    assert text.count("Vegas") == 2
    assert LINK in text


def test_report_includes_sweep_sections():
    from repro.experiments.report import ReportConfig, generate_report

    spec = SweepSpec(parameter="loss", values=(0.0,), schemes=("Vegas",), links=(LINK,))
    cfg = ReportConfig(
        duration=6.0, warmup=1.0, include_sections=["sweeps"], sweeps=[spec]
    )
    report = generate_report(cfg, progress=None)
    assert "Sweep — loss" in report
    assert "Vegas" in report


def test_sweep_spec_registry_wiring():
    """Sprout variants route through the scheme registry's builder."""
    spec = SweepSpec(parameter="sigma", values=(200.0,), links=(LINK,))
    ((scheme, _, _),) = expand_sweep(spec, TINY)
    assert get_scheme("Sprout").category == scheme.category == "sprout"
    assert SWEEP_PARAMETERS["sigma"].expand is not None


# ------------------------------------------------------------------- grids


def test_grid_spec_validation():
    with pytest.raises(ValueError, match="at least one axis"):
        GridSpec(parameters=(), values=())
    with pytest.raises(ValueError, match="distinct"):
        GridSpec(parameters=("loss", "loss"), values=((0.0,), (0.1,)))
    with pytest.raises(KeyError):
        GridSpec(parameters=("bandwidth",), values=((1.0,),))
    with pytest.raises(ValueError, match="value lists"):
        GridSpec(parameters=("loss", "scale"), values=((0.0,),))
    with pytest.raises(ValueError, match="at least one value"):
        GridSpec(parameters=("loss", "scale"), values=((0.0,), ()))
    with pytest.raises(ValueError, match="at least one scheme"):
        GridSpec(parameters=("loss",), values=((0.0,),), schemes=())


def test_grid_spec_defaults_and_shape():
    spec = GridSpec(parameters=("loss", "scale"), values=((0.0, 0.1), (1.0, 0.5, 0.25)))
    assert spec.shape == (2, 3)
    assert list(spec.links) == link_names()
    assert spec.cells_per_point == len(link_names())
    assert spec.axis_values("scale") == (1.0, 0.5, 0.25)
    with pytest.raises(KeyError, match="outage"):
        spec.axis_values("outage")


def test_grid_coordinates_are_value_major():
    """First axis slowest, last fastest — the N-D value-major order."""
    spec = GridSpec(
        parameters=("loss", "scale"),
        values=((0.0, 0.1), (1.0, 0.5)),
        schemes=("Vegas",),
        links=(LINK,),
    )
    assert spec.coordinates() == [
        (0.0, 1.0), (0.0, 0.5), (0.1, 1.0), (0.1, 0.5),
    ]
    cells = expand_grid(spec, TINY)
    assert [c[2].loss_rate for c in cells] == [0.0, 0.0, 0.1, 0.1]


def test_grid_expansion_applies_axes_in_spec_order():
    """A sigma × flows grid carries the swept model into the tunnel."""
    from repro.core.connection import SproutConfig
    from repro.experiments.competing import competing_scheme_parts

    spec = GridSpec(
        parameters=("sigma", "flows"),
        values=((120.0,), (3.0,)),
        schemes=("Sprout",),
        links=(LINK,),
    )
    ((scheme, _, _),) = expand_grid(spec, TINY)
    flows, tunnelled, sprout_config = competing_scheme_parts(scheme)
    assert (flows, tunnelled) == (3, True)
    assert isinstance(sprout_config, SproutConfig)
    assert sprout_config.model_params.sigma == 120.0


def test_grid_results_bit_identical_to_uncached_serial_cells(monkeypatch):
    """Acceptance bar: a 2-D grid == cell-by-cell uncached serial runs."""
    spec = GridSpec(
        parameters=("loss", "scale"),
        values=((0.0, 0.05), (1.0, 0.5)),
        schemes=("Vegas",),
        links=(LINK,),
    )
    fast = run_grid(spec, config=TINY, jobs=2)
    assert [p.coordinates for p in fast.points] == spec.coordinates()

    monkeypatch.setattr(global_cache(), "enabled", False)
    cells = expand_grid(spec, TINY)
    reference = [run_scheme_on_link(s, l, c) for s, l, c in cells]
    fast_rows = [r.as_dict() for p in fast.points for r in p.results]
    assert fast_rows == [r.as_dict() for r in reference]


def test_grid_data_lookup_and_slicing():
    spec = GridSpec(
        parameters=("loss", "scale"),
        values=((0.0, 0.05), (1.0, 0.5)),
        schemes=("Vegas",),
        links=(LINK,),
    )
    data = run_grid(spec, config=TINY)
    point = data.for_coordinates((0.05, 0.5))
    assert point.coordinate("loss") == 0.05
    assert point.coordinate("scale") == 0.5
    assert point.label == "loss = 0.05, scale = 0.5"
    with pytest.raises(KeyError):
        data.for_coordinates((0.2, 1.0))
    with pytest.raises(KeyError):
        point.coordinate("outage")
    half = data.slice("scale", 0.5)
    assert len(half) == 2
    assert all(p.coordinate("scale") == 0.5 for p in half)
    with pytest.raises(KeyError):
        data.slice("outage", 1.0)


def test_one_axis_grid_equals_sweep():
    """SweepSpec is exactly the one-axis GridSpec."""
    sweep_spec = SweepSpec(
        parameter="loss", values=(0.0, 0.05), schemes=("Vegas",), links=(LINK,)
    )
    sweep = run_sweep(sweep_spec, config=TINY)
    grid = run_grid(sweep_spec.to_grid(), config=TINY)
    assert [p.value for p in sweep.points] == [p.coordinates[0] for p in grid.points]
    assert [r.as_dict() for p in sweep.points for r in p.results] == [
        r.as_dict() for p in grid.points for r in p.results
    ]
    regridded = sweep.to_grid_data()
    assert regridded.spec == sweep_spec.to_grid()
    assert [p.coordinates for p in regridded.points] == [
        p.coordinates for p in grid.points
    ]


# --------------------------------------------------------- scenario axes


def test_flows_axis_builds_tunnelled_scenarios():
    from repro.experiments.competing import competing_scheme_parts

    ((scheme, _, _),) = expand_grid(
        GridSpec(parameters=("flows",), values=((3.0,),), links=(LINK,)), TINY
    )
    flows, tunnelled, _ = competing_scheme_parts(scheme)
    assert (flows, tunnelled) == (3, True)
    assert scheme.name == "Competing x3 [tunnel]"
    assert scheme.category == "scenario"
    pickle.loads(pickle.dumps(scheme))  # must ship to worker processes


def test_tunnelled_axis_toggles_direct_vs_tunnel():
    from repro.experiments.competing import competing_scheme_parts

    spec = GridSpec(parameters=("tunnelled",), values=((0.0, 1.0),), links=(LINK,))
    cells = expand_grid(spec, TINY)
    parts = [competing_scheme_parts(scheme) for scheme, _, _ in cells]
    assert [(f, t) for f, t, _ in parts] == [(2, False), (2, True)]
    assert [scheme.name for scheme, _, _ in cells] == [
        "Competing x2 [direct]",
        "Competing x2 [tunnel]",
    ]


def test_flows_and_tunnelled_compose_in_either_order():
    from repro.experiments.competing import competing_scheme_parts

    for order in (("flows", "tunnelled"), ("tunnelled", "flows")):
        values = ((3.0,), (0.0,)) if order[0] == "flows" else ((0.0,), (3.0,))
        spec = GridSpec(parameters=order, values=values, links=(LINK,))
        ((scheme, _, _),) = expand_grid(spec, TINY)
        flows, tunnelled, _ = competing_scheme_parts(scheme)
        assert (flows, tunnelled) == (3, False)


def test_scenario_axis_value_validation():
    for parameter, bad in (("flows", 0.0), ("flows", 1.5), ("tunnelled", 2.0)):
        spec = GridSpec(parameters=(parameter,), values=((bad,),), links=(LINK,))
        with pytest.raises(ValueError):
            expand_grid(spec, TINY)


def test_scenario_axes_reject_non_sprout_schemes():
    spec = GridSpec(
        parameters=("flows",), values=((2.0,),), schemes=("Vegas",), links=(LINK,)
    )
    with pytest.raises(ValueError, match="does not apply"):
        expand_grid(spec, TINY)


# --------------------------------------------------------------- frontiers


def _result(scheme, tput, delay, link=LINK):
    from repro.metrics.summary import SchemeResult

    return SchemeResult(
        scheme=scheme,
        link=link,
        throughput_bps=tput,
        delay_95_s=delay,
        self_inflicted_delay_s=delay,
        utilization=0.5,
    )


def test_pareto_frontier_points_handles_nan_and_ties():
    from repro.experiments.sweeps import pareto_frontier_points

    flags = pareto_frontier_points(
        [
            (100.0, 0.1),  # dominated by the 200/0.1 point
            (200.0, 0.1),  # frontier
            (200.0, 0.2),  # dominated (same tput, worse delay)
            (50.0, 0.05),  # frontier (best delay)
            (300.0, float("nan")),  # no operating point at all
        ]
    )
    assert flags == [False, True, False, True, False]


def test_per_flow_frontier_sections_render_per_flow_series():
    from repro.experiments.sweeps import GridData, GridPoint, render_grid_frontiers
    from repro.metrics.flows import FlowMetrics

    def result_with_flows(tput, delay, skype_delay):
        row = _result("Competing x2 [direct]", tput, delay)
        row.flows = [
            FlowMetrics(throughput_bps=tput * 0.8, delay_95_s=delay, flow="cubic-1"),
            FlowMetrics(throughput_bps=tput * 0.2, delay_95_s=skype_delay, flow="skype"),
        ]
        return row

    spec = GridSpec(parameters=("aqm",), values=((0.0, 1.0),), links=(LINK,))
    data = GridData(
        spec=spec,
        points=[
            GridPoint(("aqm",), (0.0,), [result_with_flows(2e6, 0.8, 0.9)]),
            GridPoint(("aqm",), (1.0,), [result_with_flows(1.5e6, 0.2, 0.1)]),
        ],
    )
    text = render_grid_frontiers(data)
    assert f"{LINK} — per-flow" in text
    assert "cubic-1" in text and "skype" in text
    lines = [line for line in text.splitlines() if "skype" in line]
    # The aqm=1 skype point dominates on delay but not throughput: both
    # skype points are on the skype series' frontier, independently of the
    # much-higher-throughput cubic series.
    assert all(line.rstrip().endswith("*") for line in lines)


def test_frontiers_have_no_per_flow_section_without_flow_metrics():
    from repro.experiments.sweeps import GridData, GridPoint, render_grid_frontiers

    spec = GridSpec(parameters=("aqm",), values=((0.0,),), links=(LINK,))
    data = GridData(
        spec=spec,
        points=[GridPoint(("aqm",), (0.0,), [_result("Vegas", 1e6, 0.1)])],
    )
    assert "per-flow" not in render_grid_frontiers(data)


def test_pareto_frontier_flags_undominated_rows():
    rows = [
        _result("a", 1000.0, 0.1),   # frontier: fastest at its delay
        _result("b", 2000.0, 0.2),   # frontier: more tput, more delay
        _result("c", 900.0, 0.15),   # dominated by a (less tput, more delay)
        _result("d", 2000.0, 0.3),   # dominated by b (same tput, more delay)
    ]
    assert pareto_frontier(rows) == [True, True, False, False]
    # identical rows tie: neither dominates the other
    twins = [_result("x", 1.0, 1.0), _result("y", 1.0, 1.0)]
    assert pareto_frontier(twins) == [True, True]


def test_render_grid_and_frontiers():
    spec = GridSpec(
        parameters=("loss", "scale"),
        values=((0.0, 0.05), (1.0, 0.5)),
        schemes=("Vegas",),
        links=(LINK,),
    )
    data = run_grid(spec, config=TINY)
    text = render_grid(data)
    assert "Grid — loss × scale (2 × 2 = 4 points)" in text
    assert "loss = 0.05, scale = 0.5" in text
    assert text.count("Vegas") == 4

    frontier = render_grid_frontiers(data)
    assert "Frontier — throughput vs delay across the loss × scale grid" in frontier
    assert LINK in frontier
    assert "*" in frontier  # at least one point is always undominated
    # every (point, scheme) pair appears as a candidate
    assert frontier.count("Vegas") == 4


def test_render_grid_uses_sweep_format_for_one_axis():
    spec = GridSpec(
        parameters=("loss",), values=((0.0,),), schemes=("Vegas",), links=(LINK,)
    )
    data = run_grid(spec, config=TINY)
    text = render_grid(data)
    assert text.startswith("Sweep — loss (Bernoulli packet-loss rate)")
    assert "loss = 0" in text


def test_report_includes_grid_and_frontier_sections():
    from repro.experiments.report import ReportConfig, generate_report

    spec = GridSpec(
        parameters=("loss", "scale"),
        values=((0.0,), (1.0, 0.5)),
        schemes=("Vegas",),
        links=(LINK,),
    )
    cfg = ReportConfig(
        duration=6.0, warmup=1.0, include_sections=["grids"], grids=[spec]
    )
    report = generate_report(cfg, progress=None)
    assert "Grid — loss × scale" in report
    assert "Frontier — throughput vs delay" in report


def test_model_axis_after_scenario_axis_names_the_ordering_fix():
    spec = GridSpec(
        parameters=("flows", "sigma"),
        values=((2.0,), (120.0,)),
        links=(LINK,),
    )
    with pytest.raises(ValueError, match="before 'flows'/'tunnelled'"):
        expand_grid(spec, TINY)
