"""Tests for the scenario sweep engine (repro.experiments.sweeps).

The headline property (the PR's acceptance bar): a sweep executed through
the full fast path — flattened batch, shared worker pool, shared trace
cache, batched event loop — is bit-identical to running every expanded cell
one by one, serially, with the trace cache disabled.
"""

from __future__ import annotations

import pickle

import pytest

from repro.experiments.parallel import active_pool, shared_pool
from repro.experiments.registry import get_scheme
from repro.experiments.runner import RunConfig, run_scheme_on_link
from repro.experiments.sweeps import (
    SWEEP_PARAMETERS,
    SweepSpec,
    expand_sweep,
    get_sweep_parameter,
    render_sweep,
    run_sweep,
    run_sweep_suite,
    sweep_parameter_names,
)
from repro.traces.cache import global_cache
from repro.traces.networks import get_link, link_names

TINY = RunConfig(duration=8.0, warmup=2.0)
LINK = "AT&T LTE uplink"


# ----------------------------------------------------------------- expansion


def test_sweep_parameter_registry_is_complete():
    assert set(sweep_parameter_names()) == {"loss", "sigma", "tick", "outage", "scale"}
    for name in sweep_parameter_names():
        assert get_sweep_parameter(name).description


def test_unknown_parameter_is_rejected_with_valid_names():
    with pytest.raises(KeyError, match="loss"):
        get_sweep_parameter("bandwidth")
    with pytest.raises(KeyError):
        SweepSpec(parameter="bandwidth", values=(1.0,))


def test_spec_defaults_links_to_all_eight():
    spec = SweepSpec(parameter="loss", values=(0.0, 0.01))
    assert list(spec.links) == link_names()
    assert spec.cells_per_value == len(link_names())


def test_expand_sweep_is_value_major_scheme_then_link():
    spec = SweepSpec(
        parameter="loss",
        values=(0.0, 0.1),
        schemes=("Vegas", "Skype"),
        links=(LINK, "Verizon LTE uplink"),
    )
    cells = expand_sweep(spec, TINY)
    assert len(cells) == 8
    assert [c[2].loss_rate for c in cells] == [0.0] * 4 + [0.1] * 4
    assert [c[0] for c in cells[:4]] == ["Vegas", "Vegas", "Skype", "Skype"]
    # The base config is never mutated, only replaced.
    assert TINY.loss_rate == 0.0


def test_loss_values_validated():
    spec = SweepSpec(parameter="loss", values=(1.5,), links=(LINK,))
    with pytest.raises(ValueError, match="loss rate"):
        expand_sweep(spec, TINY)


def test_sigma_and_tick_variants_are_picklable_sprout_schemes():
    for parameter, value in (("sigma", 120.0), ("tick", 0.04)):
        spec = SweepSpec(parameter=parameter, values=(value,), links=(LINK,))
        ((scheme, _, _),) = expand_sweep(spec, TINY)
        assert scheme.category == "sprout"
        assert str(value).rstrip("0").rstrip(".") in scheme.name or f"{value:g}" in scheme.name
        pickle.loads(pickle.dumps(scheme))  # must ship to worker processes


def test_sigma_and_tick_variants_start_from_the_base_spec_config():
    """Sweeping a non-default Sprout spec must keep its other knobs."""
    from repro.experiments.registry import sprout_with_confidence

    base = sprout_with_confidence(0.25)
    (scheme, _, _) = SWEEP_PARAMETERS["sigma"].expand(base, LINK, TINY, 120.0)
    variant_config = scheme.factory.args[0]
    assert variant_config.confidence == 0.25  # preserved, not reset to 0.95
    assert variant_config.model_params.sigma == 120.0
    assert "Sprout (25%)" in scheme.name and "sigma=120" in scheme.name

    (scheme, _, _) = SWEEP_PARAMETERS["tick"].expand(base, LINK, TINY, 0.04)
    variant_config = scheme.factory.args[0]
    assert variant_config.confidence == 0.25
    assert variant_config.tick_interval == 0.04
    assert variant_config.model_params.tick == 0.04


def test_sigma_sweep_rejects_unrecoverable_sprout_specs():
    """An opaque closure spec is refused, not silently re-run at defaults."""
    from repro.experiments.registry import SchemeSpec

    opaque = SchemeSpec(name="Sprout (opaque)", factory=lambda: None, category="sprout")
    with pytest.raises(ValueError, match="cannot recover"):
        SWEEP_PARAMETERS["sigma"].expand(opaque, LINK, TINY, 100.0)


def test_sigma_sweep_rejects_non_sprout_schemes():
    spec = SweepSpec(parameter="sigma", values=(100.0,), schemes=("Vegas",), links=(LINK,))
    with pytest.raises(ValueError, match="does not apply"):
        expand_sweep(spec, TINY)
    ewma = SweepSpec(
        parameter="tick", values=(0.04,), schemes=("Sprout-EWMA",), links=(LINK,)
    )
    with pytest.raises(ValueError, match="does not apply"):
        expand_sweep(ewma, TINY)


def test_outage_and_scale_modify_a_copy_of_the_link():
    pristine = get_link(LINK)
    for parameter, value in (("outage", 3.0), ("scale", 0.5)):
        spec = SweepSpec(parameter=parameter, values=(value,), links=(LINK,))
        ((_, link, _),) = expand_sweep(spec, TINY)
        assert link.name == pristine.name  # same identity for reporting
        assert link.config != pristine.config
    assert get_link(LINK).config == pristine.config  # registry untouched


def test_modified_links_get_their_own_traces():
    """The cache keys on channel content, so variants cannot collide."""
    from repro.traces.networks import link_trace

    pristine = get_link(LINK)
    spec = SweepSpec(parameter="scale", values=(0.25,), links=(LINK,))
    ((_, scaled, _),) = expand_sweep(spec, TINY)
    base_trace = link_trace(pristine, duration=5.0)
    scaled_trace = link_trace(scaled, duration=5.0)
    assert base_trace != scaled_trace
    assert len(scaled_trace) < len(base_trace)  # quarter the capacity


# ----------------------------------------------------------------- execution


def test_sweep_results_bit_identical_to_uncached_serial_cells(monkeypatch):
    """Acceptance bar: fast path == cell-by-cell uncached serial run."""
    spec = SweepSpec(
        parameter="loss",
        values=(0.0, 0.02, 0.1),
        schemes=("Vegas", "Skype"),
        links=(LINK,),
    )
    fast = run_sweep(spec, config=TINY, jobs=2)

    monkeypatch.setattr(global_cache(), "enabled", False)
    for point in fast.points:
        for row in point.results:
            reference = run_scheme_on_link(
                row.scheme,
                row.link,
                RunConfig(
                    duration=TINY.duration, warmup=TINY.warmup, loss_rate=point.value
                ),
            )
            assert row.as_dict() == reference.as_dict()


def test_run_sweep_groups_points_by_value():
    spec = SweepSpec(
        parameter="scale", values=(1.0, 0.5), schemes=("Vegas",), links=(LINK,)
    )
    data = run_sweep(spec, config=TINY)
    assert [p.value for p in data.points] == [1.0, 0.5]
    assert all(len(p.results) == 1 for p in data.points)
    assert data.for_value(0.5) is data.points[1]
    with pytest.raises(KeyError):
        data.for_value(2.0)
    # scale=1.0 is the calibrated link: identical to a plain run.
    plain = run_scheme_on_link("Vegas", LINK, TINY)
    assert data.for_value(1.0).results[0].as_dict() == plain.as_dict()


def test_scale_one_equals_identity_and_halving_reduces_throughput():
    spec = SweepSpec(
        parameter="scale", values=(1.0, 0.5), schemes=("Vegas",), links=(LINK,)
    )
    data = run_sweep(spec, config=TINY)
    full = data.for_value(1.0).results[0]
    half = data.for_value(0.5).results[0]
    assert half.throughput_bps < full.throughput_bps


def test_suite_runs_inside_one_shared_pool():
    observed_pools = []

    def spy(_result) -> None:
        observed_pools.append(active_pool())

    specs = [
        SweepSpec(parameter="loss", values=(0.0,), schemes=("Vegas",), links=(LINK,)),
        SweepSpec(parameter="scale", values=(1.0,), schemes=("Vegas",), links=(LINK,)),
    ]
    suite = run_sweep_suite(specs, config=TINY, progress=spy, jobs=2)
    assert len(suite) == 2
    assert len(observed_pools) == 2
    assert observed_pools[0] is not None
    assert observed_pools[0] is observed_pools[1]  # the same pool, reused
    assert active_pool() is None  # and closed afterwards


def test_suite_serial_when_jobs_none():
    specs = [
        SweepSpec(parameter="loss", values=(0.0,), schemes=("Vegas",), links=(LINK,))
    ]
    suite = run_sweep_suite(specs, config=TINY)
    plain = run_scheme_on_link("Vegas", LINK, TINY)
    assert suite[0].points[0].results[0].as_dict() == plain.as_dict()


@pytest.mark.perf
def test_sigma_and_tick_sweeps_run_end_to_end():
    """The model-rebuilding sweeps actually emulate (Monte-Carlo warm-up
    per non-default parameter set makes this too slow for the smoke job)."""
    for parameter, value in (("sigma", 150.0), ("tick", 0.04)):
        spec = SweepSpec(parameter=parameter, values=(value,), links=(LINK,))
        data = run_sweep(spec, config=RunConfig(duration=6.0, warmup=1.0))
        ((point),) = data.points
        (row,) = point.results
        assert row.scheme.startswith("Sprout [")
        assert row.throughput_bps > 0
        assert row.link == LINK


# ----------------------------------------------------------------- rendering


def test_render_sweep_lists_every_value_and_scheme():
    spec = SweepSpec(
        parameter="loss", values=(0.0, 0.05), schemes=("Vegas",), links=(LINK,)
    )
    text = render_sweep(run_sweep(spec, config=TINY))
    assert "Sweep — loss" in text
    assert "loss = 0" in text
    assert "loss = 0.05" in text
    assert text.count("Vegas") == 2
    assert LINK in text


def test_report_includes_sweep_sections():
    from repro.experiments.report import ReportConfig, generate_report

    spec = SweepSpec(parameter="loss", values=(0.0,), schemes=("Vegas",), links=(LINK,))
    cfg = ReportConfig(
        duration=6.0, warmup=1.0, include_sections=["sweeps"], sweeps=[spec]
    )
    report = generate_report(cfg, progress=None)
    assert "Sweep — loss" in report
    assert "Vegas" in report


def test_sweep_spec_registry_wiring():
    """Sprout variants route through the scheme registry's builder."""
    spec = SweepSpec(parameter="sigma", values=(200.0,), links=(LINK,))
    ((scheme, _, _),) = expand_sweep(spec, TINY)
    assert get_scheme("Sprout").category == scheme.category == "sprout"
    assert SWEEP_PARAMETERS["sigma"].expand is not None
