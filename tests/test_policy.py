"""Tests for the fault-tolerance policy layer (repro.experiments.policy).

Unit-level coverage of the vocabulary the engine executes: policy
validation, the structured ``CellError`` record, content-based cell keys,
the checkpoint journal's torn-tail tolerance, the cell runner's
completeness invariant, and the artifact cache's disk-degradation
behavior (docs/robustness.md).  The end-to-end recovery paths live in
``tests/test_faults.py``.
"""

from __future__ import annotations

import json
import logging
import pickle
from dataclasses import replace

import pytest

from repro.cache import ArtifactCache
from repro.experiments import parallel
from repro.experiments.parallel import run_cells
from repro.experiments.policy import (
    CHECKPOINT_FORMAT_VERSION,
    CellError,
    CheckpointJournal,
    ErrorPolicy,
    IncompleteBatchError,
    cell_key,
    describe_cell,
    is_cell_error,
)
from repro.experiments.registry import get_scheme
from repro.experiments.runner import RunConfig
from repro.metrics.summary import SchemeResult

# ------------------------------------------------------------- ErrorPolicy


def test_default_policy_is_fail_fast():
    policy = ErrorPolicy()
    assert policy.fail_fast
    assert policy.retry_budget == 0
    assert policy.cell_timeout is None
    assert policy.checkpoint is None


def test_policy_rejects_unknown_mode():
    with pytest.raises(ValueError, match="fail_fast, collect, retry"):
        ErrorPolicy(on_error="explode")


def test_policy_rejects_bad_knobs():
    with pytest.raises(ValueError, match="retries"):
        ErrorPolicy(on_error="collect", retries=-1)
    with pytest.raises(ValueError, match="cell_timeout"):
        ErrorPolicy(on_error="collect", cell_timeout=0.0)
    with pytest.raises(ValueError, match="max_pool_rebuilds"):
        ErrorPolicy(max_pool_rebuilds=-1)


def test_retry_mode_defaults_to_one_retry():
    assert ErrorPolicy(on_error="retry").retries == 1
    assert ErrorPolicy(on_error="retry", retries=3).retry_budget == 3


def test_fail_fast_ignores_the_retry_budget():
    assert ErrorPolicy(on_error="fail_fast", retries=5).retry_budget == 0
    assert ErrorPolicy(on_error="collect", retries=5).retry_budget == 5


# --------------------------------------------------------------- CellError


def test_cell_error_from_exception_captures_the_traceback():
    try:
        raise RuntimeError("boom")
    except RuntimeError as error:
        record = CellError.from_exception(
            ("Vegas", "AT&T LTE uplink", None), error, attempts=2
        )
    assert record.scheme == "Vegas"
    assert record.link == "AT&T LTE uplink"
    assert record.error_type == "RuntimeError"
    assert record.summary == "RuntimeError: boom"
    assert record.attempts == 2
    assert record.kind == "error"
    assert "raise RuntimeError" in record.traceback
    assert is_cell_error(record)
    assert not is_cell_error("anything else")


def test_cell_error_dict_round_trip():
    record = CellError(
        scheme="Sprout",
        link="TMobile UMTS downlink",
        error_type="CellTimeoutError",
        message="cell exceeded 5s",
        attempts=3,
        kind="timeout",
    )
    assert CellError.from_dict(record.as_dict()) == record
    # Foreign keys (a future schema's extras) are ignored, not fatal.
    assert CellError.from_dict({**record.as_dict(), "new_field": 1}) == record


def test_cell_error_names_spec_cells():
    spec = get_scheme("Vegas")
    record = CellError.from_exception((spec, "AT&T LTE uplink", None), ValueError("x"))
    assert record.scheme == "Vegas"


# ---------------------------------------------------------------- cell keys


def test_cell_key_is_deterministic():
    cell = ("Sprout", "AT&T LTE uplink", RunConfig(duration=6.0, warmup=1.0))
    assert cell_key(cell) == cell_key(
        ("Sprout", "AT&T LTE uplink", RunConfig(duration=6.0, warmup=1.0))
    )


def test_cell_key_tracks_cell_content():
    config = RunConfig(duration=6.0, warmup=1.0)
    base = cell_key(("Sprout", "AT&T LTE uplink", config))
    assert cell_key(("Vegas", "AT&T LTE uplink", config)) != base
    assert cell_key(("Sprout", "Verizon LTE uplink", config)) != base
    assert cell_key(("Sprout", "AT&T LTE uplink", replace(config, loss_rate=0.01))) != base


def test_cell_key_ignores_the_error_policy():
    """Resume must match a journal written under a different policy."""
    plain = RunConfig(duration=6.0, warmup=1.0)
    collecting = replace(
        plain, error_policy=ErrorPolicy(on_error="collect", retries=2)
    )
    cell = ("Sprout", "AT&T LTE uplink", plain)
    assert cell_key(cell) == cell_key(("Sprout", "AT&T LTE uplink", collecting))


def test_cell_key_distinguishes_registry_variants():
    """``sprout_variant`` specs key on their full factory configuration."""
    from repro.experiments.sweeps import SWEEP_PARAMETERS

    expand = SWEEP_PARAMETERS["sigma"].expand
    config = RunConfig(duration=6.0, warmup=1.0)
    cell_a = expand("Sprout", "AT&T LTE uplink", config, 100.0)
    cell_b = expand("Sprout", "AT&T LTE uplink", config, 200.0)
    assert cell_key(cell_a) != cell_key(cell_b)
    assert cell_key(cell_a) == cell_key(
        expand("Sprout", "AT&T LTE uplink", config, 100.0)
    )


def test_describe_cell_embeds_the_format_version():
    assert describe_cell(("Sprout", "x", None))[0] == CHECKPOINT_FORMAT_VERSION


# ------------------------------------------------------- CheckpointJournal


def _result(scheme="Vegas", link="AT&T LTE uplink") -> SchemeResult:
    return SchemeResult(
        scheme=scheme,
        link=link,
        throughput_bps=1e6,
        delay_95_s=0.05,
        self_inflicted_delay_s=0.04,
        utilization=0.8,
        capacity_bps=1.25e6,
        omniscient_delay_95_s=0.01,
    )


def test_journal_round_trip(tmp_path):
    path = str(tmp_path / "journal.jsonl")
    journal = CheckpointJournal(path)
    journal.record("key-a", _result())
    journal.record("key-b", _result(scheme="Skype"))
    journal.close()
    loaded = CheckpointJournal(path).load()
    assert set(loaded) == {"key-a", "key-b"}
    assert loaded["key-a"].as_dict() == _result().as_dict()


def test_journal_missing_file_is_empty(tmp_path):
    assert CheckpointJournal(str(tmp_path / "absent.jsonl")).load() == {}


def test_journal_tolerates_a_torn_tail(tmp_path):
    """A run killed mid-write leaves a half line; the prefix must survive."""
    path = str(tmp_path / "journal.jsonl")
    journal = CheckpointJournal(path)
    journal.record("key-a", _result())
    journal.close()
    with open(path, "a", encoding="utf-8") as handle:
        handle.write('{"v": 1, "key": "key-b", "result": {"scheme"')  # torn
    loaded = CheckpointJournal(path).load()
    assert set(loaded) == {"key-a"}


def test_journal_skips_foreign_versions(tmp_path):
    path = str(tmp_path / "journal.jsonl")
    with open(path, "w", encoding="utf-8") as handle:
        handle.write(json.dumps({"v": 999, "key": "old", "result": {}}) + "\n")
    journal = CheckpointJournal(path)
    journal.record("key-a", _result())
    journal.close()
    assert set(CheckpointJournal(path).load()) == {"key-a"}


def test_journal_creates_parent_directories(tmp_path):
    path = str(tmp_path / "deep" / "nested" / "journal.jsonl")
    journal = CheckpointJournal(path)
    journal.record("key-a", _result())
    journal.close()
    assert set(CheckpointJournal(path).load()) == {"key-a"}


# ------------------------------------------------- completeness invariant


def test_incomplete_batch_error_lists_missing_indices():
    error = IncompleteBatchError([3, 7], 10)
    assert error.missing == [3, 7]
    assert "2 of 10" in str(error)
    assert "3, 7" in str(error)
    long = IncompleteBatchError(range(30), 40)
    assert "..." in str(long)


def test_run_cells_raises_on_silent_cell_loss(monkeypatch):
    """An engine that drops a cell must fail loudly, not shrink the list."""

    def leaky_dispatch(cells, pending, policy, record, jobs):
        for index in pending[:-1]:  # "lose" the last pending cell
            record(index, _result())

    monkeypatch.setattr(parallel, "_dispatch", leaky_dispatch)
    cells = [("Vegas", "AT&T LTE uplink", None)] * 3
    with pytest.raises(IncompleteBatchError) as exc_info:
        run_cells(cells, jobs=1)
    assert exc_info.value.missing == [2]


# ------------------------------------------------- cache disk degradation


class _PickleCache(ArtifactCache):
    """Minimal concrete cache for exercising the shared machinery."""

    suffix = ".pkl"

    def default_directory(self) -> str:  # pragma: no cover - directory is set
        raise AssertionError("tests always set an explicit directory")

    def write_artifact(self, handle, value) -> None:
        pickle.dump(value, handle)

    def read_artifact(self, path: str):
        with open(path, "rb") as handle:
            return pickle.load(handle)


def test_unwritable_disk_degrades_to_memory_only(tmp_path, caplog):
    """Satellite: ENOSPC/EACCES on a cache write logs once, then degrades."""
    blocker = tmp_path / "not-a-directory"
    blocker.write_text("a regular file where the cache directory should be")
    cache = _PickleCache(directory=str(blocker / "cache"))
    with caplog.at_level(logging.WARNING, logger="repro.cache"):
        assert cache.get("k1", lambda: "v1") == "v1"
        assert cache.get("k2", lambda: "v2") == "v2"
    warnings = [r for r in caplog.records if "disk cache write failed" in r.message]
    assert len(warnings) == 1  # first failure logs; later writes are silent
    assert cache._disk_write_disabled
    # The memory tier still serves: no rebuild for a cached key.
    assert cache.get("k1", lambda: pytest.fail("memory tier lost")) == "v1"
    assert cache.stats.memory_hits == 1


def test_degraded_cache_still_reads_disk(tmp_path):
    """A read-only shared cache directory keeps serving hits after degrade."""
    directory = tmp_path / "cache"
    writer = _PickleCache(directory=str(directory))
    writer.get("shared", lambda: "artifact")  # published to disk
    reader = _PickleCache(directory=str(directory))
    reader._disk_write_disabled = True  # degraded earlier in its life
    assert reader.get("shared", lambda: pytest.fail("disk read skipped")) == "artifact"
    assert reader.stats.disk_hits == 1


def test_configure_rearms_disk_writes(tmp_path):
    cache = _PickleCache(directory=str(tmp_path / "a"))
    cache._disk_write_disabled = True
    cache.configure(directory=str(tmp_path / "b"))
    assert not cache._disk_write_disabled
    cache.get("k", lambda: "v")
    assert (tmp_path / "b" / f"k{cache.suffix}").exists()
