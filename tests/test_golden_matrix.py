"""Golden-trace regression suite for the measurement matrix.

``tests/fixtures/golden_matrix.json`` is a frozen-seed scheme × link matrix
result checked in at the time the trace cache and batched event loop were
introduced, produced by the plain serial runner.  Any code change that
perturbs a simulation bit — trace generation, event ordering, queueing,
metrics — shows up here as an exact-compare failure, under both the serial
runner and the process-pool runner, so the fast paths can never drift from
the reference physics unnoticed.

JSON floats round-trip exactly through ``repr`` (IEEE-754 doubles), so the
comparison really is bit-for-bit, not approximate.
"""

from __future__ import annotations

import json
from pathlib import Path

import pytest

from repro.experiments.parallel import run_cells, run_matrix, shared_pool
from repro.experiments.runner import RunConfig
from repro.experiments.runner import run_matrix as run_matrix_serial
from repro.traces.cache import global_cache

pytestmark = pytest.mark.golden

FIXTURE_PATH = Path(__file__).parent / "fixtures" / "golden_matrix.json"


@pytest.fixture(scope="module")
def golden() -> dict:
    return json.loads(FIXTURE_PATH.read_text())


@pytest.fixture(scope="module")
def run_config(golden) -> RunConfig:
    return RunConfig(**golden["run_config"])


def test_fixture_shape(golden):
    assert golden["schemes"] and golden["links"]
    expected_cells = len(golden["schemes"]) * len(golden["links"])
    assert len(golden["results"]) == expected_cells
    for row in golden["results"]:
        assert set(row) >= {
            "scheme",
            "link",
            "throughput_bps",
            "delay_95_s",
            "self_inflicted_delay_s",
            "utilization",
        }


def test_serial_matrix_reproduces_golden_results_exactly(golden, run_config):
    results = run_matrix_serial(golden["schemes"], golden["links"], config=run_config)
    assert [r.as_dict() for r in results] == golden["results"]


def test_parallel_matrix_reproduces_golden_results_exactly(golden, run_config):
    results = run_matrix(
        golden["schemes"], golden["links"], config=run_config, jobs=2
    )
    assert [r.as_dict() for r in results] == golden["results"]


def test_shared_pool_matrix_reproduces_golden_results_exactly(golden, run_config):
    with shared_pool(2):
        results = run_matrix(golden["schemes"], golden["links"], config=run_config)
    assert [r.as_dict() for r in results] == golden["results"]


def test_golden_results_independent_of_trace_cache(golden, run_config, monkeypatch):
    """With the cache disabled entirely, the physics must not move."""
    cache = global_cache()
    monkeypatch.setattr(cache, "enabled", False)
    cells = [
        (scheme, link, run_config)
        for scheme in golden["schemes"]
        for link in golden["links"]
    ]
    results = run_cells(cells, jobs=1)
    assert [r.as_dict() for r in results] == golden["results"]
