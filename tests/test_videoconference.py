"""Tests for the videoconference application models."""

import pytest

from repro.baselines.videoconference import (
    FACETIME_PROFILE,
    HANGOUT_PROFILE,
    SKYPE_PROFILE,
    VideoconferenceReceiver,
    VideoconferenceSender,
    make_facetime,
    make_hangout,
    make_skype,
)
from repro.simulation.packet import MTU_BYTES, Packet


class FakeCtx:
    def __init__(self):
        self.sent = []
        self.time = 0.0
        self.name = "fake"

    def now(self):
        return self.time

    def send(self, packet):
        packet.sent_at = self.time
        self.sent.append(packet)


def _report(delay):
    return Packet(headers={"vc_report": True, "vc_report_delay": delay})


def test_profiles_match_qualitative_ordering():
    assert SKYPE_PROFILE.max_rate_bps > FACETIME_PROFILE.max_rate_bps > HANGOUT_PROFILE.max_rate_bps
    assert HANGOUT_PROFILE.down_react_time >= SKYPE_PROFILE.down_react_time


def test_rate_ladder_is_monotone_within_bounds():
    ladder = SKYPE_PROFILE.rate_ladder()
    assert ladder == sorted(ladder)
    assert ladder[0] == pytest.approx(SKYPE_PROFILE.min_rate_bps)
    assert ladder[-1] == pytest.approx(SKYPE_PROFILE.max_rate_bps)


def test_sender_emits_frames_at_current_rate():
    sender = VideoconferenceSender(SKYPE_PROFILE)
    ctx = FakeCtx()
    sender.start(ctx)
    sender.on_tick(0.033)
    frame_bytes = sum(p.size for p in ctx.sent)
    expected = sender.current_rate_bps * SKYPE_PROFILE.frame_interval / 8.0
    assert frame_bytes == pytest.approx(expected, abs=MTU_BYTES)
    assert all(p.size <= MTU_BYTES for p in ctx.sent)


def test_sender_steps_down_only_after_sustained_congestion():
    sender = VideoconferenceSender(SKYPE_PROFILE)
    ctx = FakeCtx()
    sender.start(ctx)
    start_index = sender.rate_index
    # One congested report is not enough: reaction takes down_react_time.
    sender.on_packet(_report(1.0), now=0.0)
    assert sender.rate_index == start_index
    sender.on_packet(_report(1.0), now=SKYPE_PROFILE.down_react_time / 2)
    assert sender.rate_index == start_index
    sender.on_packet(_report(1.0), now=SKYPE_PROFILE.down_react_time + 0.1)
    assert sender.rate_index == start_index - 1


def test_sender_steps_up_after_sustained_comfort():
    sender = VideoconferenceSender(SKYPE_PROFILE)
    ctx = FakeCtx()
    sender.start(ctx)
    start_index = sender.rate_index
    sender.on_packet(_report(0.01), now=0.0)
    sender.on_packet(_report(0.01), now=SKYPE_PROFILE.up_react_time + 0.1)
    assert sender.rate_index == start_index + 1


def test_mixed_reports_reset_reaction_timers():
    sender = VideoconferenceSender(SKYPE_PROFILE)
    ctx = FakeCtx()
    sender.start(ctx)
    start_index = sender.rate_index
    sender.on_packet(_report(1.0), now=0.0)
    sender.on_packet(_report(0.2), now=1.0)   # neither congested nor comfortable
    sender.on_packet(_report(1.0), now=SKYPE_PROFILE.down_react_time + 0.5)
    # The congestion timer restarted at the last congested report, so no
    # downgrade has happened yet.
    assert sender.rate_index == start_index


def test_rate_never_leaves_ladder():
    sender = VideoconferenceSender(HANGOUT_PROFILE)
    ctx = FakeCtx()
    sender.start(ctx)
    for i in range(100):
        sender.on_packet(_report(2.0), now=i * 10.0)
    assert sender.rate_index == 0
    for i in range(100):
        sender.on_packet(_report(0.0), now=1000.0 + i * 10.0)
    assert sender.rate_index == len(sender.ladder) - 1


def test_receiver_reports_delay_above_baseline():
    receiver = VideoconferenceReceiver(report_interval=0.1)
    ctx = FakeCtx()
    receiver.start(ctx)
    first = Packet(headers={"vc_frame_seq": 1})
    first.sent_at = 0.0
    receiver.on_packet(first, 0.05)          # baseline one-way delay 50 ms
    second = Packet(headers={"vc_frame_seq": 2})
    second.sent_at = 0.1
    receiver.on_packet(second, 0.45)         # 350 ms => 300 ms of queueing
    receiver.on_tick(0.5)
    report = ctx.sent[-1]
    assert report.headers["vc_report"] is True
    assert report.headers["vc_report_delay"] == pytest.approx(0.30, abs=0.01)


def test_receiver_goodput_resets_each_report():
    receiver = VideoconferenceReceiver(report_interval=1.0)
    ctx = FakeCtx()
    receiver.start(ctx)
    packet = Packet(size=1000, headers={"vc_frame_seq": 1})
    packet.sent_at = 0.0
    receiver.on_packet(packet, 0.5)
    receiver.on_tick(1.0)
    assert ctx.sent[-1].headers["vc_report_goodput"] == pytest.approx(8000.0)
    receiver.on_tick(2.0)
    assert ctx.sent[-1].headers["vc_report_goodput"] == 0.0


def test_receiver_validates_interval():
    with pytest.raises(ValueError):
        VideoconferenceReceiver(report_interval=0.0)


def test_factories_build_matched_pairs():
    for factory in (make_skype, make_facetime, make_hangout):
        sender, receiver = factory()
        assert isinstance(sender, VideoconferenceSender)
        assert isinstance(receiver, VideoconferenceReceiver)
