"""Chaos acceptance matrix for the live transport (``make test-chaos``).

Every impairment profile runs a real 64 KiB loopback transfer and must
end in one of exactly two ways: the transfer completes, or it aborts with
a populated :class:`~repro.transport.endpoint.TransferDiagnosis` — in
either case well inside half the configured deadline.  No profile may
ever exit by deadline expiry (the PR 9 failure mode this suite exists to
kill), and the impairment pipeline's recorded fates must replay
bit-identically under the same seed, which is what "identical seeds
reproduce identical transport counters" means for wall-clock runs.
"""

import pytest

from repro.transport import LiveConfig, run_live_transfer, sockets_available

pytestmark = [
    pytest.mark.chaos,
    pytest.mark.transport,
    pytest.mark.skipif(
        not sockets_available(), reason="loopback UDP sockets unavailable"
    ),
]

TRANSFER_BYTES = 64 * 1024
DEADLINE = 12.0

#: the acceptance matrix: profile name -> --impair spec.  Blackouts are
#: anchored at 50 ms because a clean loopback 64 KiB transfer finishes in
#: ~100 ms — "mid-transfer" must mean mid-*transfer*, not mid-deadline.
PROFILES = {
    "clean": "",
    "bernoulli_loss": "loss:p=0.15",
    "ge_bursty_loss": "ge:p=0.08,burst=6",
    "reorder_jitter": "reorder:p=0.1,gap=4,hold=40ms",
    "duplication": "dup:p=0.2",
    "corruption_storm": "corrupt:p=0.35",
    "rate_throttle": "rate:bps=3mbit",
    "blackout_mid_transfer": "blackout:at=50ms,len=1.5s",
    "blackout_feedback_only": "blackout:at=50ms,len=1.5s,dir=down",
    "combined_adversary": "ge:p=0.05,burst=8;reorder:p=0.05,gap=3;dup:p=0.1;corrupt:p=0.15",
}

#: a permanent outage: the only acceptable outcome is a watchdog abort
BLACKHOLE = "blackout:at=10ms,len=60s"


def _run(spec: str, seed: int = 0):
    config = LiveConfig(
        transfer_bytes=TRANSFER_BYTES,
        repeats=1,
        deadline=DEADLINE,
        impair=spec,
        impair_seed=seed,
    )
    return run_live_transfer(config, repeat=1)


def _assert_clean_outcome(result):
    """Completed, or aborted with a diagnosis — never a deadline expiry."""
    if not result.completed:
        assert result.failure, "incomplete run must carry a structured failure"
        assert result.diagnosis is not None
        assert result.diagnosis.reason == result.failure
    assert result.duration_s < DEADLINE / 2, (
        f"took {result.duration_s:.2f}s, over half the {DEADLINE}s deadline"
    )
    assert result.event_counts.get("deadline_expired", 0) == 0
    # the seed-determinism gate: the recorded submissions replay to
    # bit-identical fates and counters through a fresh pipeline twin
    assert result.impair_replay_ok in (None, True)


@pytest.mark.parametrize("profile", sorted(PROFILES), ids=sorted(PROFILES))
def test_chaos_profile_completes_or_aborts_cleanly(profile):
    result = _run(PROFILES[profile])
    _assert_clean_outcome(result)
    # every listed profile is survivable at these parameters: the
    # hardened lifecycle should finish the transfer, not merely fail fast
    assert result.completed, (
        f"profile {profile} did not complete: {result.failure or 'deadline'}\n"
        + (result.diagnosis.describe() if result.diagnosis else "")
    )
    assert result.lost_forever == 0
    assert result.closed


def test_chaos_blackout_is_visible_in_metrics():
    result = _run(PROFILES["blackout_mid_transfer"])
    assert result.completed
    # the outage dominates the transfer's arrival timeline
    assert result.longest_stall_s > 1.0
    assert result.event_counts.get("blackout_enter", 0) >= 1
    assert result.event_counts.get("blackout_exit", 0) >= 1
    assert result.duration_s > 1.0  # the transfer actually spanned the outage


def test_chaos_corruption_storm_counts_decode_errors():
    result = _run(PROFILES["corruption_storm"])
    assert result.completed
    assert result.decode_errors > 0
    assert result.event_counts.get("decode_error", 0) == result.decode_errors
    # in-flight corruption must never quarantine the legitimate peer
    assert result.quarantine_drops == 0


def test_chaos_blackhole_aborts_with_diagnosis():
    result = _run(BLACKHOLE)
    assert not result.completed
    assert result.failure in ("peer-inactivity", "no-progress")
    diagnosis = result.diagnosis
    assert diagnosis is not None
    assert diagnosis.reason == result.failure
    assert diagnosis.elapsed_s < DEADLINE / 2
    # every datagram died inside the blackout before reaching sendto, but
    # the sender demonstrably kept trying until the watchdog called it
    assert diagnosis.total_retransmits > 0
    assert diagnosis.outstanding > 0  # it died with unacked data, and says so
    assert diagnosis.events, "the diagnosis carries the event-ring tail"
    assert diagnosis.events[-1].kind == "watchdog_abort"
    assert result.event_counts.get("deadline_expired", 0) == 0
    as_dict = diagnosis.as_dict()
    assert as_dict["reason"] == result.failure
    assert as_dict["events"]


def test_chaos_abort_reports_fast():
    # the watchdog derives from the deadline: deadline/4 clamped to [0.5, 4]
    result = _run(BLACKHOLE)
    assert result.duration_s < DEADLINE / 2
    assert result.duration_s >= 1.0  # it did wait for the watchdog, not crash
