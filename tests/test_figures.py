"""Tests for the figure-regeneration harnesses (small configurations)."""

import numpy as np
import pytest

from repro.experiments.figure1 import render_figure1, run_figure1
from repro.experiments.figure2 import render_figure2, run_figure2
from repro.experiments.figure7 import Figure7Data, render_figure7, run_figure7
from repro.experiments.figure8 import render_figure8, run_figure8
from repro.experiments.figure9 import render_figure9, run_figure9
from repro.experiments.runner import RunConfig
from repro.metrics.summary import SchemeResult


@pytest.fixture(scope="module")
def tiny_config():
    return RunConfig(duration=15.0, warmup=5.0)


class TestFigure1:
    @pytest.fixture(scope="class")
    def data(self):
        return run_figure1(duration=20.0, schemes=("Skype", "Sprout-EWMA"))

    def test_capacity_series_covers_duration(self, data):
        assert data.capacity_times[-1] <= 20.0
        assert np.all(data.capacity_kbps >= 0)

    def test_each_scheme_has_series(self, data):
        assert set(data.schemes) == {"Skype", "Sprout-EWMA"}
        for series in data.schemes.values():
            assert series.throughput_kbps.shape == data.capacity_times.shape
            assert len(series.delay_ms) > 0

    def test_summary_and_render(self, data):
        summary = data.summary()
        assert "Skype" in summary
        text = render_figure1(data)
        assert "Figure 1" in text and "Skype" in text


class TestFigure2:
    @pytest.fixture(scope="class")
    def data(self):
        return run_figure2(duration=200.0)

    def test_survival_curve_is_monotone_decreasing(self, data):
        assert np.all(np.diff(data.survival_percent) <= 1e-9)
        assert data.survival_percent[0] > data.survival_percent[-1]

    def test_bulk_of_interarrivals_are_short(self, data):
        # The overwhelming majority of interarrivals are below 20 ms, as in
        # the paper's measurement (99.99% within 20 ms there).
        idx = int(np.searchsorted(data.thresholds, 0.020))
        assert data.survival_percent[idx] < 5.0

    def test_tail_exponent_reported(self, data):
        assert data.tail_exponent > 1.0 or np.isnan(data.tail_exponent)
        text = render_figure2(data)
        assert "power-law" in text

    def test_saturator_variant_runs(self):
        data = run_figure2(duration=30.0, use_saturator=True)
        assert data.stats.count > 0


class TestFigure7:
    @pytest.fixture(scope="class")
    def data(self, tiny_config):
        return run_figure7(
            schemes=("Sprout-EWMA", "Vegas"),
            links=("AT&T LTE uplink", "AT&T LTE downlink"),
            config=tiny_config,
        )

    def test_matrix_shape(self, data):
        assert len(data.results) == 4
        assert set(data.by_link()) == {"AT&T LTE uplink", "AT&T LTE downlink"}

    def test_for_link_and_best_delay(self, data):
        rows = data.for_link("AT&T LTE uplink")
        assert {r.scheme for r in rows} == {"Sprout-EWMA", "Vegas"}
        assert data.best_delay_scheme("AT&T LTE uplink") in {"Sprout-EWMA", "Vegas"}
        assert data.best_delay_scheme("unknown link") is None

    def test_render(self, data):
        text = render_figure7(data)
        assert "AT&T LTE uplink" in text and "Vegas" in text


class TestFigure8:
    def test_reuses_existing_results(self):
        results = [
            SchemeResult("Sprout", "l1", 1e6, 0.1, 0.05, 0.5),
            SchemeResult("Cubic", "l1", 2e6, 2.0, 1.9, 0.9),
            SchemeResult("Vegas", "l1", 1e6, 0.3, 0.25, 0.6),  # not in Figure 8
        ]
        data = run_figure8(results=results)
        assert set(data.averages) == {"Sprout", "Cubic"}
        assert data.utilization_percent("Cubic") == pytest.approx(90.0)
        assert data.mean_delay_ms("Sprout") == pytest.approx(50.0)
        assert "Cubic" in render_figure8(data)


class TestFigure9:
    @pytest.fixture(scope="class")
    def data(self, tiny_config):
        return run_figure9(
            confidences=(0.95, 0.25),
            context_schemes=("Sprout-EWMA",),
            config=tiny_config,
        )

    def test_sweep_contains_requested_confidences(self, data):
        assert set(data.sweep) == {0.95, 0.25}
        assert data.frontier()[0].scheme == "Sprout (95%)"

    def test_lower_confidence_not_slower(self, data):
        cautious = data.sweep[0.95]
        bold = data.sweep[0.25]
        assert bold.throughput_bps >= 0.8 * cautious.throughput_bps

    def test_render(self, data):
        text = render_figure9(data)
        assert "confidence" in text.lower()
        assert "Sprout (95%)" in text
