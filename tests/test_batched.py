"""Tests for the batched cross-cell engine (docs/performance.md Layer 4).

Three layers of guarantees, mirroring how the engine is built:

* kernel bitwise identity — ``RateModel.batched_tick`` and
  ``RateModel.batched_cumulative_quantile`` must return rows *bitwise*
  equal to the per-cell methods, because the engine's whole correctness
  story rests on installs matching the serial computation exactly;
* forecaster install contract — an installed step only applies when the
  tick arrives with the predicted observation; any mismatch falls back to
  the serial computation (counted, never wrong);
* engine equivalence — ``run_cells(backend="batched")`` reproduces the
  serial engine bit-for-bit on the golden measurement matrix (Sprout cells
  batch, Vegas/Skype fall back per-cell), with the trace and model caches
  on or off, and composes with the ErrorPolicy fault paths.
"""

from __future__ import annotations

import json
from pathlib import Path

import numpy as np
import pytest

from repro.core.forecaster import BayesianForecaster
from repro.core.rate_model import clear_shared_models, model_cache, shared_rate_model
from repro.experiments.batched import _eligible_spec, _run_group, _try_build
from repro.experiments.parallel import BACKENDS, run_cells
from repro.experiments.policy import CellError, ErrorPolicy
from repro.experiments.registry import get_scheme, scheme_names
from repro.experiments.runner import RunConfig
from repro.experiments.sweeps import GridSpec, run_grid
from repro.traces.cache import global_cache

FIXTURE_PATH = Path(__file__).parent / "fixtures" / "golden_matrix.json"


@pytest.fixture(scope="module")
def golden() -> dict:
    return json.loads(FIXTURE_PATH.read_text())


@pytest.fixture(scope="module")
def golden_cells(golden):
    config = RunConfig(**golden["run_config"])
    return [
        (scheme, link, config)
        for scheme in golden["schemes"]
        for link in golden["links"]
    ]


# ------------------------------------------------------- kernel bit identity


def _random_beliefs(n: int, bins: int, seed: int) -> np.ndarray:
    rng = np.random.default_rng(seed)
    beliefs = rng.random((n, bins))
    beliefs /= beliefs.sum(axis=1, keepdims=True)
    return beliefs


def test_batched_tick_bitwise_equals_serial_update():
    model = shared_rate_model()
    beliefs = _random_beliefs(7, model.params.num_bins, seed=11)
    packets = [None, 0.0, 3.0, 17.5, None, 140.0, 9.0]
    censored = [False, False, True, False, False, False, True]
    batched = model.batched_tick(beliefs, packets, censored)
    for i in range(len(packets)):
        if packets[i] is None:
            expected = model.evolve(beliefs[i])
        else:
            expected = model.update(beliefs[i], packets[i], censored=censored[i])
        assert np.array_equal(batched[i], expected), f"row {i} diverged"


def test_batched_tick_does_not_mutate_input():
    model = shared_rate_model()
    beliefs = _random_beliefs(3, model.params.num_bins, seed=12)
    before = beliefs.copy()
    model.batched_tick(beliefs, [None, 2.0, 8.0], [False, False, False])
    assert np.array_equal(beliefs, before)


def test_batched_cumulative_quantile_bitwise_equals_serial():
    model = shared_rate_model()
    beliefs = _random_beliefs(9, model.params.num_bins, seed=13)
    percentiles = [0.05] * 7 + [0.5, 0.95]
    batched = model.batched_cumulative_quantile(beliefs, percentiles)
    for i, percentile in enumerate(percentiles):
        expected = model.cumulative_quantile(beliefs[i], percentile)
        assert np.array_equal(batched[i], expected), f"row {i} diverged"


# -------------------------------------------------- forecaster install hook


def test_install_step_consumed_on_matching_tick():
    model = shared_rate_model()
    serial = BayesianForecaster(model=model)
    installed = BayesianForecaster(model=model)
    for observed in (3000.0, None, 15000.0):
        serial.tick(observed)
        packets = None if observed is None else observed / installed.mtu_bytes
        row = model.batched_tick(
            installed.belief[None, :], [packets], [False]
        )[0]
        installed.install_step(observed, False, row)
        installed.tick(observed)
    assert installed.batched_steps == 3
    assert installed.batched_fallbacks == 0
    assert np.array_equal(installed.belief, serial.belief)
    assert np.array_equal(installed.forecast(), serial.forecast())


def test_install_step_mismatch_falls_back_to_serial_math():
    model = shared_rate_model()
    reference = BayesianForecaster(model=model)
    forecaster = BayesianForecaster(model=model)
    reference.tick(4500.0)
    # Predict one observation, deliver another: the stale install must be
    # discarded and the tick recomputed serially.
    wrong_row = model.batched_tick(forecaster.belief[None, :], [1.0], [False])[0]
    forecaster.install_step(1500.0, False, wrong_row)
    forecaster.tick(4500.0)
    assert forecaster.batched_fallbacks == 1
    assert forecaster.batched_steps == 0
    assert np.array_equal(forecaster.belief, reference.belief)


# ------------------------------------------------------ eligibility screens


def test_only_plain_sprout_is_eligible():
    assert _eligible_spec(get_scheme("Sprout"))
    assert not _eligible_spec(get_scheme("Sprout-EWMA"))
    assert not _eligible_spec(get_scheme("Vegas"))
    assert not _eligible_spec(get_scheme("Skype"))
    codel_like = [
        name for name in scheme_names() if get_scheme(name).use_codel
    ]
    for name in codel_like:
        assert not _eligible_spec(get_scheme(name)), name


def test_try_build_rejects_ineligible_and_builds_sprout():
    config = RunConfig(duration=4.0, warmup=1.0)
    assert _try_build(0, "Vegas", "AT&T LTE uplink", config) is None
    cell = _try_build(0, "Sprout", "AT&T LTE uplink", config)
    assert cell is not None
    assert cell.scheme_name == "Sprout"
    assert isinstance(cell.forecaster, BayesianForecaster)


# ----------------------------------------------------- engine equivalence


def test_backend_name_is_validated():
    config = RunConfig(duration=4.0, warmup=1.0)
    with pytest.raises(ValueError, match="backend"):
        run_cells([("Sprout", "AT&T LTE uplink", config)], backend="bogus")
    assert "batched" in BACKENDS


def test_batched_backend_reproduces_golden_matrix_exactly(golden, golden_cells):
    """The acceptance bar: batched == serial on the golden fixture.

    The matrix mixes one batchable scheme (Sprout) with two fallback
    schemes (Vegas, Skype), so this exercises grouping, lockstep stepping,
    and the per-cell fallback in one run.
    """
    results = run_cells(golden_cells, backend="batched")
    assert [r.as_dict() for r in results] == golden["results"]


def test_batched_backend_matches_golden_with_caches_off(golden, golden_cells, monkeypatch):
    """Same fixture with the trace cache and model cache both disabled."""
    monkeypatch.setattr(global_cache(), "enabled", False)
    monkeypatch.setattr(model_cache(), "enabled", False)
    clear_shared_models()
    try:
        results = run_cells(golden_cells, backend="batched")
    finally:
        clear_shared_models()
    assert [r.as_dict() for r in results] == golden["results"]


def test_batched_grid_matches_serial_grid():
    """A loss × scale Sprout grid: every cell batches, none fall back."""
    spec = GridSpec(
        parameters=("loss", "scale"),
        values=((0.0, 0.01), (1.0, 0.6)),
        schemes=("Sprout",),
        links=("AT&T LTE uplink",),
    )
    config = RunConfig(duration=4.0, warmup=1.0)
    serial = run_grid(spec, config=config, jobs=1)
    batched = run_grid(spec, config=config, backend="batched")
    assert [r.as_dict() for p in batched.points for r in p.results] == [
        r.as_dict() for p in serial.points for r in p.results
    ]


def test_lockstep_driver_installs_every_tick():
    """White-box: on a plain Sprout cell the driver predicts every tick.

    A mis-prediction would only cost speed, but a healthy driver installs
    every receiver tick and never falls back; pin that so a regression in
    the pause/peek/install protocol is visible, not silently slow.
    """
    config = RunConfig(duration=4.0, warmup=1.0)
    cell = _try_build(0, "Sprout", "AT&T LTE uplink", config)
    assert cell is not None
    outcomes = []
    _run_group(
        [cell],
        record_success=lambda c: outcomes.append("ok"),
        record_failure=lambda c, e: outcomes.append(e),
    )
    assert outcomes == ["ok"]
    assert cell.forecaster.ticks_processed > 0
    assert cell.forecaster.batched_steps == cell.forecaster.ticks_processed
    assert cell.forecaster.batched_fallbacks == 0


# -------------------------------------------------- ErrorPolicy composition


@pytest.fixture()
def crash_index_one(monkeypatch):
    monkeypatch.setenv(
        "REPRO_FAULT_SPEC", json.dumps([{"kind": "crash", "index": 1}])
    )


def _loss_cells(policy: ErrorPolicy):
    config = RunConfig(
        duration=4.0, warmup=1.0, error_policy=policy
    )
    return [
        ("Sprout", "AT&T LTE uplink", RunConfig(
            duration=4.0, warmup=1.0, loss_rate=loss, error_policy=policy
        ))
        for loss in (0.0, 0.005, 0.01)
    ]


def test_batched_collect_records_cell_error_in_place(monkeypatch):
    monkeypatch.setenv(
        "REPRO_FAULT_SPEC", json.dumps([{"kind": "crash", "index": 1}])
    )
    policy = ErrorPolicy(on_error="collect")
    results = run_cells(_loss_cells(policy), backend="batched")
    assert isinstance(results[1], CellError)
    assert results[1].error_type == "InjectedFault"
    monkeypatch.delenv("REPRO_FAULT_SPEC")
    clean = run_cells(_loss_cells(ErrorPolicy()), backend="batched")
    assert results[0].as_dict() == clean[0].as_dict()
    assert results[2].as_dict() == clean[2].as_dict()


def test_batched_fail_fast_raises(crash_index_one):
    from repro.testing.faults import InjectedFault

    with pytest.raises(InjectedFault):
        run_cells(_loss_cells(ErrorPolicy()), backend="batched")


def test_batched_retry_recovers_transient_crash(monkeypatch):
    # times=1: the fault fires on attempt 1 only; the serial retry (attempt
    # 2) runs clean, so the cell must come back with the correct metrics.
    monkeypatch.setenv(
        "REPRO_FAULT_SPEC",
        json.dumps([{"kind": "crash", "index": 1, "times": 1}]),
    )
    policy = ErrorPolicy(on_error="retry", retries=1)
    results = run_cells(_loss_cells(policy), backend="batched")
    monkeypatch.delenv("REPRO_FAULT_SPEC")
    clean = run_cells(_loss_cells(ErrorPolicy()), backend="batched")
    assert [r.as_dict() for r in results] == [r.as_dict() for r in clean]


def test_cell_timeout_routes_to_pooled_engine():
    """The in-process driver cannot preempt a cell; run_cells must hand
    timeout batches to the pooled fault-tolerant engine instead."""
    policy = ErrorPolicy(on_error="collect", cell_timeout=60.0)
    cells = _loss_cells(policy)
    timed = run_cells(cells, backend="batched")
    plain = run_cells(_loss_cells(ErrorPolicy()), backend="batched")
    assert [r.as_dict() for r in timed] == [r.as_dict() for r in plain]
