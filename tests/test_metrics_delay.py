"""Tests for the delay metrics (Section 5.1 definitions)."""

import math

import pytest

from repro.metrics.delay import (
    arrivals_from_log,
    delay_signal_segments,
    end_to_end_delay_95,
    percentile_of_delay_signal,
    self_inflicted_delay,
)
from repro.simulation.packet import Packet


def test_constant_delay_stream():
    # A packet arrives every 100 ms, each having taken exactly 50 ms.
    arrivals = [(0.1 * i, 0.1 * i - 0.05) for i in range(1, 101)]
    p95 = percentile_of_delay_signal(arrivals, start_time=0.0, end_time=10.0)
    # Between arrivals the delay ramps from 50 ms to 150 ms; the 95th
    # percentile of that sawtooth is 145 ms.
    assert p95 == pytest.approx(0.145, abs=0.01)


def test_back_to_back_arrivals_give_delay_close_to_one_way_delay():
    arrivals = [(0.001 * i, 0.001 * i - 0.02) for i in range(1, 10001)]
    p95 = percentile_of_delay_signal(arrivals, start_time=0.0, end_time=10.0)
    assert p95 == pytest.approx(0.021, abs=0.002)


def test_outage_inflates_percentile():
    arrivals = [(0.01 * i, 0.01 * i - 0.02) for i in range(1, 901)]
    # ... then nothing for 5 seconds, then arrivals resume.
    arrivals += [(9.0 + 5.0 + 0.01 * i, 14.0 + 0.01 * i - 0.02) for i in range(1, 101)]
    p95 = percentile_of_delay_signal(arrivals, start_time=0.0, end_time=15.0)
    # A 5 s gap in a 15 s window occupies a third of the time, so the 95th
    # percentile lands well inside the gap's ramp.
    assert p95 > 3.0


def test_reordered_older_packet_does_not_reduce_delay():
    arrivals = [
        (1.0, 0.9),   # delay 100 ms
        (1.5, 0.7),   # an *older* packet arriving late: must not help
        (2.0, 1.9),
    ]
    segments = delay_signal_segments(arrivals, start_time=0.0, end_time=2.5)
    # Only two segments: [1.0, 2.0) anchored at send 0.9 and [2.0, 2.5)
    # anchored at send 1.9.
    assert len(segments) == 2
    assert segments[0][0] == pytest.approx(0.1)
    assert segments[0][1] == pytest.approx(1.0)
    assert segments[1][0] == pytest.approx(0.1)


def test_percentile_requires_valid_range():
    with pytest.raises(ValueError):
        percentile_of_delay_signal([(1.0, 0.9)], start_time=0.0, end_time=2.0, percentile=0.0)
    with pytest.raises(ValueError):
        delay_signal_segments([], start_time=1.0, end_time=1.0)


def test_no_arrivals_gives_nan():
    assert math.isnan(percentile_of_delay_signal([], start_time=0.0, end_time=1.0))


def test_arrivals_outside_window_ignored():
    arrivals = [(20.0, 19.9)]
    assert math.isnan(percentile_of_delay_signal(arrivals, start_time=0.0, end_time=10.0))


def test_end_to_end_delay_95_is_95th_percentile():
    arrivals = [(0.1 * i, 0.1 * i - 0.05) for i in range(1, 101)]
    assert end_to_end_delay_95(arrivals, 0.0, 10.0) == pytest.approx(
        percentile_of_delay_signal(arrivals, 0.0, 10.0, 95.0)
    )


def test_median_lower_than_95th():
    arrivals = [(0.1 * i, 0.1 * i - 0.05) for i in range(1, 101)]
    p50 = percentile_of_delay_signal(arrivals, 0.0, 10.0, percentile=50.0)
    p95 = percentile_of_delay_signal(arrivals, 0.0, 10.0, percentile=95.0)
    assert p50 < p95


def test_self_inflicted_delay_subtracts_omniscient():
    assert self_inflicted_delay(0.5, 0.1) == pytest.approx(0.4)
    assert self_inflicted_delay(0.1, 0.5) == 0.0
    assert math.isnan(self_inflicted_delay(float("nan"), 0.1))


def test_arrivals_from_log_extracts_timestamps():
    packet = Packet()
    packet.sent_at = 1.0
    log = [(1.5, packet), (2.0, Packet())]  # the second has no sent_at
    arrivals = arrivals_from_log(log)
    assert arrivals == [(1.5, 1.0)]


def test_arrivals_from_log_can_exclude_control_packets():
    small = Packet(size=60)
    small.sent_at = 1.0
    big = Packet(size=1500)
    big.sent_at = 1.1
    log = [(1.5, small), (1.6, big)]
    assert len(arrivals_from_log(log, include_control=False)) == 1
    assert len(arrivals_from_log(log, include_control=True)) == 2
