"""Tests for the Bayesian and EWMA forecasters."""

import numpy as np
import pytest

from repro.core.forecaster import BayesianForecaster, EWMAForecaster


class TestBayesianForecaster:
    def test_defaults_match_paper(self):
        forecaster = BayesianForecaster()
        assert forecaster.confidence == 0.95
        assert forecaster.percentile == pytest.approx(0.05)
        assert forecaster.tick_duration == pytest.approx(0.020)
        assert forecaster.forecast_ticks == 8

    def test_confidence_validation(self):
        with pytest.raises(ValueError):
            BayesianForecaster(confidence=0.0)
        with pytest.raises(ValueError):
            BayesianForecaster(confidence=1.0)

    def test_tracks_steady_rate(self):
        rng = np.random.default_rng(0)
        forecaster = BayesianForecaster()
        true_rate_pps = 400.0
        for _ in range(300):
            packets = rng.poisson(true_rate_pps * 0.02)
            forecaster.tick(packets * 1500.0)
        estimate_pps = forecaster.estimated_rate_bytes_per_sec() / 1500.0
        assert estimate_pps == pytest.approx(true_rate_pps, rel=0.15)

    def test_forecast_is_cumulative_bytes(self):
        rng = np.random.default_rng(1)
        forecaster = BayesianForecaster()
        for _ in range(300):
            forecaster.tick(rng.poisson(8.0) * 1500.0)
        forecast = forecaster.forecast()
        assert len(forecast) == 8
        assert np.all(np.diff(forecast) >= 0)
        assert forecast[-1] > 0
        # Cautious: below the expected 8 packets/tick * 8 ticks.
        assert forecast[-1] < 8 * 8 * 1500

    def test_skipping_observations_diffuses_but_keeps_probability(self):
        forecaster = BayesianForecaster()
        for _ in range(100):
            forecaster.tick(6 * 1500.0)
        before = forecaster.estimated_rate_bytes_per_sec()
        for _ in range(20):
            forecaster.tick(None)
        after = forecaster.estimated_rate_bytes_per_sec()
        assert forecaster.belief.sum() == pytest.approx(1.0)
        # Without observations the estimate drifts but does not collapse.
        assert after > 0.3 * before

    def test_observing_zero_detects_outage(self):
        forecaster = BayesianForecaster()
        for _ in range(100):
            forecaster.tick(6 * 1500.0)
        for _ in range(25):
            forecaster.tick(0.0)
        assert forecaster.estimated_rate_bytes_per_sec() / 1500.0 < 50.0
        assert np.all(forecaster.forecast()[:2] < 2 * 1500)

    def test_censored_tick_does_not_drag_estimate_down(self):
        forecaster = BayesianForecaster()
        for _ in range(200):
            forecaster.tick(8 * 1500.0)
        before = forecaster.estimated_rate_bytes_per_sec()
        for _ in range(20):
            forecaster.tick(1 * 1500.0, at_least=True)
        after = forecaster.estimated_rate_bytes_per_sec()
        assert after > 0.7 * before

    def test_negative_observation_rejected(self):
        with pytest.raises(ValueError):
            BayesianForecaster().tick(-1.0)

    def test_counters(self):
        forecaster = BayesianForecaster()
        forecaster.tick(1500.0)
        forecaster.tick(None)
        forecaster.tick(0.0)
        assert forecaster.ticks_processed == 3
        assert forecaster.observations == 2

    def test_rate_distribution_is_a_copy(self):
        forecaster = BayesianForecaster()
        dist = forecaster.rate_distribution()
        dist[:] = 0.0
        assert forecaster.belief.sum() == pytest.approx(1.0)


class TestEWMAForecaster:
    def test_parameter_validation(self):
        with pytest.raises(ValueError):
            EWMAForecaster(alpha=0.0)
        with pytest.raises(ValueError):
            EWMAForecaster(alpha=1.5)
        with pytest.raises(ValueError):
            EWMAForecaster(tick_duration=0.0)
        with pytest.raises(ValueError):
            EWMAForecaster(forecast_ticks=0)

    def test_first_observation_initialises_estimate(self):
        forecaster = EWMAForecaster()
        forecaster.tick(3000.0)
        assert forecaster.bytes_per_tick == 3000.0

    def test_converges_to_steady_rate(self):
        forecaster = EWMAForecaster(alpha=0.125)
        for _ in range(200):
            forecaster.tick(4500.0)
        assert forecaster.bytes_per_tick == pytest.approx(4500.0, rel=0.01)
        assert forecaster.estimated_rate_bytes_per_sec() == pytest.approx(225000.0, rel=0.01)

    def test_forecast_extrapolates_linearly_without_caution(self):
        forecaster = EWMAForecaster()
        for _ in range(100):
            forecaster.tick(3000.0)
        forecast = forecaster.forecast()
        assert np.allclose(forecast, 3000.0 * np.arange(1, 9), rtol=0.01)

    def test_skipped_ticks_do_not_change_estimate(self):
        forecaster = EWMAForecaster()
        forecaster.tick(3000.0)
        forecaster.tick(None)
        assert forecaster.bytes_per_tick == 3000.0

    def test_censored_lower_observation_ignored(self):
        forecaster = EWMAForecaster()
        for _ in range(50):
            forecaster.tick(6000.0)
        forecaster.tick(100.0, at_least=True)
        assert forecaster.bytes_per_tick == pytest.approx(6000.0, rel=0.01)

    def test_censored_higher_observation_still_raises_estimate(self):
        forecaster = EWMAForecaster()
        forecaster.tick(1000.0)
        forecaster.tick(5000.0, at_least=True)
        assert forecaster.bytes_per_tick > 1000.0

    def test_reacts_to_rate_drop_slower_than_sudden(self):
        forecaster = EWMAForecaster(alpha=0.125)
        for _ in range(100):
            forecaster.tick(6000.0)
        forecaster.tick(0.0)
        # A single zero only nudges the low-pass filter (Section 5.3's point
        # about EWMA not responding immediately to sudden rate reductions).
        assert forecaster.bytes_per_tick > 5000.0


class TestTickFromWallClock:
    """The wall-clock adapter that drives 20 ms ticks from real elapsed time."""

    def _ticker(self, tick=0.020, max_catchup=8):
        from repro.core.forecaster import TickFromWallClock

        return TickFromWallClock(tick, max_catchup=max_catchup)

    def test_first_call_anchors_the_lattice(self):
        ticker = self._ticker()
        assert ticker.due_ticks(10.0) == 0  # anchoring consumes the call
        assert ticker.due_ticks(10.019) == 0
        assert ticker.due_ticks(10.021) == 1

    def test_ticks_accumulate_with_elapsed_time(self):
        ticker = self._ticker()
        ticker.due_ticks(0.0)
        assert ticker.due_ticks(0.100) == 5
        assert ticker.due_ticks(0.100) == 0  # already consumed
        assert ticker.due_ticks(0.140) == 2
        assert ticker.ticks_fired == 7

    def test_catchup_is_bounded_after_a_stall(self):
        ticker = self._ticker(max_catchup=8)
        ticker.due_ticks(0.0)
        # A 1-second GC pause owes 50 ticks; only 8 fire, the rest are
        # dropped (counted) so the protocol never spirals through a burst
        # of stale ticks.
        assert ticker.due_ticks(1.0) == 8
        assert ticker.ticks_skipped == 42
        assert ticker.due_ticks(1.02) == 1

    def test_next_deadline_tracks_the_lattice(self):
        ticker = self._ticker()
        assert ticker.next_deadline() is None  # not anchored yet
        ticker.due_ticks(5.0)
        assert ticker.next_deadline() == pytest.approx(5.020)
        ticker.due_ticks(5.050)  # fires 2
        assert ticker.next_deadline() == pytest.approx(5.060)
