"""Tests for the experiment runner and its metric collection."""

import math

import pytest

from repro.experiments.runner import RunConfig, run_matrix, run_scheme_on_link, run_with_loss_rates


def test_run_config_validation():
    with pytest.raises(ValueError):
        RunConfig(duration=0.0)
    with pytest.raises(ValueError):
        RunConfig(duration=10.0, warmup=10.0)
    with pytest.raises(ValueError):
        RunConfig(duration=10.0, warmup=-1.0)


def test_result_fields_are_consistent(sprout_lte_result):
    result = sprout_lte_result
    assert result.scheme == "Sprout"
    assert result.link == "Verizon LTE downlink"
    assert result.throughput_bps > 0
    assert not math.isnan(result.delay_95_s)
    assert result.self_inflicted_delay_s >= 0
    assert 0.0 <= result.utilization <= 1.0
    assert result.capacity_bps >= result.throughput_bps
    assert result.extra["packets_delivered"] > 0


def test_unknown_scheme_or_link_raise():
    with pytest.raises(KeyError):
        run_scheme_on_link("NotAScheme", "Verizon LTE downlink")
    with pytest.raises(KeyError):
        run_scheme_on_link("Sprout", "Not A Link")


def test_runs_are_deterministic(short_run_config):
    first = run_scheme_on_link("Vegas", "AT&T LTE uplink", short_run_config)
    second = run_scheme_on_link("Vegas", "AT&T LTE uplink", short_run_config)
    assert first.throughput_bps == pytest.approx(second.throughput_bps)
    assert first.self_inflicted_delay_s == pytest.approx(second.self_inflicted_delay_s)


def test_run_matrix_covers_all_pairs(short_run_config):
    results = run_matrix(
        ["Vegas", "Skype"],
        ["AT&T LTE uplink", "T-Mobile 3G (UMTS) downlink"],
        config=short_run_config,
    )
    pairs = {(r.scheme, r.link) for r in results}
    assert len(pairs) == 4


def test_run_matrix_progress_callback(short_run_config):
    seen = []
    run_matrix(["Vegas"], ["AT&T LTE uplink"], config=short_run_config, progress=seen.append)
    assert len(seen) == 1
    assert seen[0].scheme == "Vegas"


def test_loss_sweep_reduces_sprout_throughput(short_run_config):
    results = run_with_loss_rates(
        "Sprout-EWMA", "Verizon LTE downlink", [0.0, 0.10], config=short_run_config
    )
    assert set(results) == {0.0, 0.10}
    assert results[0.10].throughput_bps < results[0.0].throughput_bps
    # Even at 10% loss the transfer keeps making useful progress.
    assert results[0.10].throughput_bps > 0.2 * results[0.0].throughput_bps
