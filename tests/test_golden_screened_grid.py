"""Golden-fixture suite for the analytic screening tier (schema v4).

Mirrors ``test_golden_aqm_grid.py`` for the screened-grid layer: the exact
CSV and JSON bytes of a small ``loss × scale`` Reno grid run *with
screening enabled* — two cells emulated, six reported as closed-form
predictions — are checked in under ``tests/fixtures/`` and must be
reproduced bit-for-bit by the serial runner, the ``jobs=2`` process-pool
runner, and the batched cross-cell engine.  Any drift in the predictors,
the screening plan, the emulation, or the v4 export encoding shows up as
an exact-compare failure.

The fidelity bar rides along: the cells the screen *does* emulate must be
bit-identical to the same cells of an unscreened run — screening may skip
work, never change it.
"""

from __future__ import annotations

from pathlib import Path

import pytest

from repro.experiments.analytic import ScreenConfig
from repro.experiments.exports import (
    export_csv,
    export_json,
    export_rows,
    grid_data_from_json,
    parse_csv,
)
from repro.experiments.runner import RunConfig
from repro.experiments.sweeps import GridSpec, run_grid
from repro.metrics.summary import is_screened
from repro.traces.channel import ChannelConfig
from repro.traces.networks import LinkSpec

pytestmark = pytest.mark.golden

FIXTURES = Path(__file__).parent / "fixtures"
GOLDEN_CSV = FIXTURES / "golden_screened_grid.csv"
GOLDEN_JSON = FIXTURES / "golden_screened_grid.json"

#: the same noise-free link the oracle suite polices: on a steady channel
#: the predictions are trustworthy enough that the default screen keeps
#: only the frontier candidates (here the lowest-loss column)
STEADY_LINK = LinkSpec(
    network="Steady 9.6 Mbit/s",
    direction="downlink",
    config=ChannelConfig(
        mean_rate=800.0,
        volatility=0.0,
        outage_rate=0.0,
        fade_depth=0.0,
        max_rate=4000.0,
    ),
    seed=77,
)

GOLDEN_SPEC = GridSpec(
    parameters=("loss", "scale"),
    values=((0.002, 0.01, 0.05, 0.2), (1.0, 0.5)),
    schemes=("Reno",),
    links=(STEADY_LINK,),
)
GOLDEN_CONFIG = RunConfig(duration=6.0, warmup=1.0)
GOLDEN_SCREEN = ScreenConfig()


@pytest.fixture(scope="module")
def screened_data():
    return run_grid(
        GOLDEN_SPEC, config=GOLDEN_CONFIG, jobs=1, screen=GOLDEN_SCREEN
    )


def test_csv_export_matches_golden_fixture(screened_data):
    assert export_csv(screened_data) == GOLDEN_CSV.read_text()


def test_json_export_matches_golden_fixture(screened_data):
    assert export_json(screened_data) == GOLDEN_JSON.read_text()


def test_fixture_actually_mixes_screened_and_simulated(screened_data):
    """Guard against a vacuous golden: both outcome kinds must be present."""
    rows = [row for point in screened_data.points for row in point.results]
    screened = [row for row in rows if is_screened(row)]
    simulated = [row for row in rows if not is_screened(row)]
    assert len(screened) == 6
    assert len(simulated) == 2
    for row in screened:
        assert row.prediction_uncertainty > 0.0
        assert row.flows is None  # a screened cell was never emulated


def test_parallel_screened_grid_reproduces_golden_exactly():
    data = run_grid(
        GOLDEN_SPEC, config=GOLDEN_CONFIG, jobs=2, screen=GOLDEN_SCREEN
    )
    assert export_csv(data) == GOLDEN_CSV.read_text()
    assert export_json(data) == GOLDEN_JSON.read_text()


def test_batched_screened_grid_reproduces_golden_exactly():
    data = run_grid(
        GOLDEN_SPEC, config=GOLDEN_CONFIG, backend="batched", screen=GOLDEN_SCREEN
    )
    assert export_csv(data) == GOLDEN_CSV.read_text()
    assert export_json(data) == GOLDEN_JSON.read_text()


def test_screening_never_changes_the_cells_it_simulates(screened_data):
    """The fidelity bar: screening skips work, it must not perturb it —
    every emulated cell is bit-identical to the unscreened run's cell."""
    unscreened = run_grid(GOLDEN_SPEC, config=GOLDEN_CONFIG, jobs=1)
    compared = 0
    for mine, theirs in zip(screened_data.points, unscreened.points):
        assert mine.label == theirs.label
        for row, reference in zip(mine.results, theirs.results):
            if is_screened(row):
                continue
            assert row.as_dict() == reference.as_dict()
            compared += 1
    assert compared == 2


def test_golden_fixture_round_trips(screened_data):
    rows = parse_csv(GOLDEN_CSV.read_text())
    assert rows == export_rows(screened_data)
    rebuilt = grid_data_from_json(GOLDEN_JSON.read_text())
    assert rebuilt.spec.parameters == screened_data.spec.parameters
    for mine, theirs in zip(screened_data.points, rebuilt.points):
        assert [r.as_dict() for r in mine.results] == [
            r.as_dict() for r in theirs.results
        ]
        assert [is_screened(r) for r in mine.results] == [
            is_screened(r) for r in theirs.results
        ]
