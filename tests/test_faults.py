"""End-to-end tests of the fault-tolerant grid engine (docs/robustness.md).

Every recovery path is driven by the deterministic injection harness
(:mod:`repro.testing.faults`, armed through ``REPRO_FAULT_SPEC``): a cell
raising in a warmed pool, a worker hanging past the cell timeout, a worker
exiting hard (breaking the process pool), and a corrupted on-disk model
artifact.  The centrepiece is the acceptance grid: a 3 × 3 grid with one
crashing, one hanging, and one corrupt-artifact cell that must complete
under ``collect``, export as schema v3, render its failure section, and
resume from a checkpoint re-running only the failed cells.

Marked ``fault`` (``make test-fault`` runs just this file); the suite also
runs under the full tier-1 pass.
"""

from __future__ import annotations

import json
import time
from dataclasses import replace

import pytest

from repro.experiments import parallel
from repro.experiments.exports import export_csv, export_json, grid_data_from_json, parse_csv
from repro.experiments.parallel import run_cells, shared_pool
from repro.experiments.policy import CellError, ErrorPolicy, is_cell_error
from repro.experiments.runner import RunConfig, run_scheme_on_link
from repro.experiments.sweeps import (
    GridSpec,
    render_grid,
    render_grid_frontiers,
    run_grid,
)
from repro.testing.faults import (
    FAULT_SPEC_ENV,
    FaultClause,
    InjectedFault,
    fire_faults,
    parse_fault_spec,
)

pytestmark = pytest.mark.fault

LINK = "AT&T LTE uplink"
CONFIG = RunConfig(duration=4.0, warmup=1.0)


def _arm(monkeypatch, *clauses: dict) -> None:
    monkeypatch.setenv(FAULT_SPEC_ENV, json.dumps(list(clauses)))


def _cells(n: int):
    """``n`` distinct Vegas cells (distinct loss rates keep the keys apart)."""
    return [
        ("Vegas", LINK, replace(CONFIG, loss_rate=0.001 * i)) for i in range(n)
    ]


@pytest.fixture(scope="module")
def clean_outcomes():
    """The 3-cell batch measured with no faults armed (the reference)."""
    return [run_scheme_on_link(*cell) for cell in _cells(3)]


# ------------------------------------------------------------ harness unit


def test_fault_spec_parsing_rejects_garbage():
    with pytest.raises(ValueError, match="JSON list"):
        parse_fault_spec('{"kind": "crash"}')
    with pytest.raises(ValueError, match="not valid JSON"):
        parse_fault_spec("{nope")
    with pytest.raises(ValueError, match="unknown fault clause keys"):
        parse_fault_spec('[{"kind": "crash", "shceme": "*"}]')
    with pytest.raises(ValueError, match="kind must be one of"):
        parse_fault_spec('[{"kind": "meltdown"}]')
    with pytest.raises(ValueError, match="probability"):
        parse_fault_spec('[{"kind": "crash", "probability": 1.5}]')


def test_fault_clause_matching():
    clause = FaultClause(kind="crash", scheme="Veg*", index=2, times=1)
    assert clause.matches("Vegas", LINK, attempt=1, index=2)
    assert not clause.matches("Sprout", LINK, attempt=1, index=2)
    assert not clause.matches("Vegas", LINK, attempt=1, index=3)
    assert not clause.matches("Vegas", LINK, attempt=2, index=2)  # times spent


def test_probability_gate_is_deterministic():
    clause = FaultClause(kind="crash", probability=0.5, seed=7)
    draws = [clause.matches("Vegas", LINK, attempt=a, index=None) for a in range(1, 20)]
    again = [clause.matches("Vegas", LINK, attempt=a, index=None) for a in range(1, 20)]
    assert draws == again  # same spec, same decisions — always
    assert any(draws) and not all(draws)  # and the coin actually varies
    never = FaultClause(kind="crash", probability=0.0)
    assert not any(never.matches("Vegas", LINK, attempt=a, index=None) for a in range(1, 10))


def test_unarmed_harness_is_inert(monkeypatch):
    monkeypatch.delenv(FAULT_SPEC_ENV, raising=False)
    fire_faults("Vegas", LINK)  # no spec: must be a no-op


# ------------------------------------------------------------ crash paths


def test_fail_fast_propagates_an_injected_crash(monkeypatch):
    _arm(monkeypatch, {"kind": "crash", "index": 1})
    with pytest.raises(InjectedFault):
        run_cells(_cells(3), jobs=2)


def test_crash_collected_in_a_warmed_shared_pool(monkeypatch, clean_outcomes):
    """Satellite matrix: a worker crash in the warmed pool is collected and
    the surviving cells stay bit-identical to the no-fault run."""
    _arm(monkeypatch, {"kind": "crash", "index": 1})
    with shared_pool(2):
        outcomes = run_cells(
            _cells(3), policy=ErrorPolicy(on_error="collect"), jobs=2
        )
    assert [is_cell_error(o) for o in outcomes] == [False, True, False]
    failed = outcomes[1]
    assert failed.error_type == "InjectedFault"
    assert failed.kind == "error" and failed.attempts == 1
    assert outcomes[0].as_dict() == clean_outcomes[0].as_dict()
    assert outcomes[2].as_dict() == clean_outcomes[2].as_dict()


def test_retry_then_succeed_is_bit_identical(monkeypatch, clean_outcomes):
    _arm(monkeypatch, {"kind": "crash", "index": 1, "times": 1})
    outcomes = run_cells(
        _cells(3), policy=ErrorPolicy(on_error="retry", retries=2), jobs=2
    )
    assert not any(is_cell_error(o) for o in outcomes)
    assert [o.as_dict() for o in outcomes] == [o.as_dict() for o in clean_outcomes]


def test_retry_exhausted_records_the_attempt_count(monkeypatch):
    _arm(monkeypatch, {"kind": "crash", "index": 0})  # crashes every attempt
    outcomes = run_cells(
        _cells(2), policy=ErrorPolicy(on_error="retry", retries=2), jobs=2
    )
    failed = outcomes[0]
    assert is_cell_error(failed)
    assert failed.attempts == 3  # 1 initial + 2 retries
    assert not is_cell_error(outcomes[1])


# ---------------------------------------------------------- timeout paths


def test_cell_timeout_expiry_records_a_timeout(monkeypatch):
    _arm(monkeypatch, {"kind": "hang", "index": 0, "seconds": 60.0})
    start = time.monotonic()
    outcomes = run_cells(
        _cells(2),
        policy=ErrorPolicy(on_error="collect", cell_timeout=5.0),
        jobs=2,
    )
    elapsed = time.monotonic() - start
    assert elapsed < 45.0, "the hung worker was never reclaimed"
    failed = outcomes[0]
    assert is_cell_error(failed)
    assert failed.kind == "timeout"
    assert failed.error_type == "CellTimeoutError"
    assert "cell_timeout" in failed.message
    assert not is_cell_error(outcomes[1])


def test_hang_retry_then_succeed(monkeypatch, clean_outcomes):
    _arm(monkeypatch, {"kind": "hang", "index": 0, "seconds": 60.0, "times": 1})
    outcomes = run_cells(
        _cells(2),
        policy=ErrorPolicy(on_error="retry", retries=1, cell_timeout=5.0),
        jobs=2,
    )
    assert not any(is_cell_error(o) for o in outcomes)
    assert outcomes[0].as_dict() == clean_outcomes[0].as_dict()


# ------------------------------------------------------- pool break paths


def test_worker_hard_exit_heals_the_pool(monkeypatch, clean_outcomes):
    """A worker dying hard breaks the pool; the batch rebuilds it and the
    victim cell's re-run (attempt 2, past ``times``) succeeds."""
    _arm(monkeypatch, {"kind": "exit", "index": 1, "times": 1})
    outcomes = run_cells(_cells(3), policy=ErrorPolicy(on_error="collect"), jobs=2)
    assert not any(is_cell_error(o) for o in outcomes)
    assert [o.as_dict() for o in outcomes] == [o.as_dict() for o in clean_outcomes]


def test_cell_breaking_the_pool_twice_is_quarantined(monkeypatch, clean_outcomes):
    """Two pool breaks with the same cell in flight quarantine it to a
    serial in-parent run (attempt 3, past ``times``, so it completes)."""
    _arm(monkeypatch, {"kind": "exit", "index": 0, "times": 2})
    outcomes = run_cells(_cells(3), policy=ErrorPolicy(on_error="collect"), jobs=2)
    assert not any(is_cell_error(o) for o in outcomes)
    assert [o.as_dict() for o in outcomes] == [o.as_dict() for o in clean_outcomes]


# -------------------------------------------------- corrupt-artifact path


def test_corrupt_model_artifact_heals_on_retry(monkeypatch):
    """A corrupted ``.npz`` fails the strict cell; the retry rebuilds the
    model from scratch and must reproduce the clean result bit-for-bit."""
    reference = run_scheme_on_link("Sprout", LINK, CONFIG)
    _arm(monkeypatch, {"kind": "corrupt", "scheme": "Sprout", "times": 1})
    (outcome,) = run_cells(
        [("Sprout", LINK, CONFIG)],
        policy=ErrorPolicy(on_error="retry", retries=1),
        jobs=1,
    )
    assert not is_cell_error(outcome)
    assert outcome.as_dict() == reference.as_dict()


# -------------------------------------------------------- acceptance grid


ACCEPTANCE_SPEC = GridSpec(
    parameters=("loss", "scale"),
    values=((0.0, 0.01, 0.02), (1.0, 0.75, 0.5)),
    schemes=("Vegas",),
    links=(LINK,),
)
#: batch indices of the crashing, hanging, and corrupt-artifact cells
CRASH_AT, HANG_AT, CORRUPT_AT = 2, 4, 6


@pytest.fixture(scope="module")
def clean_grid():
    return run_grid(ACCEPTANCE_SPEC, config=CONFIG, jobs=1)


def test_acceptance_grid_collects_three_failures(
    monkeypatch, tmp_path, clean_grid
):
    """The issue's acceptance scenario, end to end: a 3 × 3 grid with one
    crashing, one hanging, and one corrupt-artifact cell completes under
    ``collect``, returns 6 results + 3 structured errors in order, exports
    as schema v3, renders the failure section, and a checkpointed re-run
    re-executes exactly the 3 failed cells."""
    checkpoint = str(tmp_path / "grid.ckpt.jsonl")
    policy = ErrorPolicy(on_error="collect", cell_timeout=6.0, checkpoint=checkpoint)
    _arm(
        monkeypatch,
        {"kind": "crash", "index": CRASH_AT},
        {"kind": "hang", "index": HANG_AT, "seconds": 60.0},
        {"kind": "corrupt", "index": CORRUPT_AT},
    )
    data = run_grid(ACCEPTANCE_SPEC, config=CONFIG, policy=policy, jobs=2)

    # Exactly 6 good results + 3 structured errors, in cell order.
    outcomes = [row for point in data.points for row in point.results]
    assert len(outcomes) == 9
    failed_at = [i for i, row in enumerate(outcomes) if is_cell_error(row)]
    assert failed_at == [CRASH_AT, HANG_AT, CORRUPT_AT]
    assert outcomes[CRASH_AT].error_type == "InjectedFault"
    assert outcomes[HANG_AT].kind == "timeout"
    assert outcomes[CORRUPT_AT].error_type == "InjectedCorruptArtifact"
    clean = [row for point in clean_grid.points for row in point.results]
    for i in set(range(9)) - set(failed_at):
        assert outcomes[i].as_dict() == clean[i].as_dict()

    # Schema-v3 exports carry the failures, both directions.
    rows = parse_csv(export_csv(data))
    assert len(rows) == 9
    assert [row["error"] is not None for row in rows].count(True) == 3
    crash_row = rows[CRASH_AT]
    assert crash_row["error"].startswith("InjectedFault:")
    assert crash_row["throughput_bps"] is None
    rebuilt = grid_data_from_json(export_json(data))
    rebuilt_outcomes = [row for point in rebuilt.points for row in point.results]
    assert [is_cell_error(row) for row in rebuilt_outcomes] == [
        is_cell_error(row) for row in outcomes
    ]
    assert rebuilt_outcomes[HANG_AT] == outcomes[HANG_AT]

    # The report renders FAILED lines plus the failure footer, and the
    # frontier section excludes the failed cells.
    rendered = render_grid(data)
    assert rendered.count("FAILED") == 3
    assert "3 of 9 cells failed" in rendered
    assert "(3 failed cells excluded)" in render_grid_frontiers(data)

    # Resume: with the faults disarmed, a checkpointed re-run executes
    # exactly the 3 failed cells and completes green.
    monkeypatch.delenv(FAULT_SPEC_ENV)
    executed = []
    real_run_cell = parallel._run_cell

    def counting_run_cell(scheme, link, config, attempt=1, index=None):
        executed.append(index)
        return real_run_cell(scheme, link, config, attempt=attempt, index=index)

    monkeypatch.setattr(parallel, "_run_cell", counting_run_cell)
    resumed = run_grid(ACCEPTANCE_SPEC, config=CONFIG, policy=policy, jobs=1)
    assert sorted(executed) == [CRASH_AT, HANG_AT, CORRUPT_AT]
    resumed_outcomes = [row for point in resumed.points for row in point.results]
    assert not any(is_cell_error(row) for row in resumed_outcomes)
    assert [row.as_dict() for row in resumed_outcomes] == [
        row.as_dict() for row in clean
    ]
    assert "cells failed" not in render_grid(resumed)


def test_checkpoint_journals_only_successes(monkeypatch, tmp_path):
    checkpoint = str(tmp_path / "small.ckpt.jsonl")
    _arm(monkeypatch, {"kind": "crash", "index": 0})
    run_cells(
        _cells(2),
        policy=ErrorPolicy(on_error="collect", checkpoint=checkpoint),
        jobs=1,
    )
    lines = [
        json.loads(line)
        for line in open(checkpoint, encoding="utf-8")
        if line.strip()
    ]
    assert len(lines) == 1  # the failed cell is not journaled
    assert lines[0]["result"]["scheme"] == "Vegas"


def test_progress_sees_cell_errors_under_collect(monkeypatch):
    _arm(monkeypatch, {"kind": "crash", "index": 0})
    seen = []
    run_cells(
        _cells(2),
        progress=seen.append,
        policy=ErrorPolicy(on_error="collect"),
        jobs=1,
    )
    assert len(seen) == 2
    assert sum(isinstance(o, CellError) for o in seen) == 1
