"""Tests for the inference fast path.

Covers the three equivalences the optimisation relies on:

* the fused (single-matvec) and windowed forecast quantiles match the
  per-horizon reference loop exactly;
* cached likelihood vectors are bit-identical to uncached computation,
  including the outage bin's special cases;
* the lazy forecast cache only recomputes when the belief changed.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.forecaster import BayesianForecaster
from repro.core.rate_model import RateModel, RateModelParams


def _random_beliefs(num_bins: int, count: int, seed: int = 20130419):
    rng = np.random.default_rng(seed)
    for _ in range(count):
        belief = rng.random(num_bins)
        yield belief / belief.sum()


def _concentrated_beliefs(num_bins: int, count: int, seed: int = 7):
    """Gaussian-bump posteriors, some with extra outage-bin mass."""
    rng = np.random.default_rng(seed)
    grid = np.arange(num_bins)
    for i in range(count):
        center = rng.integers(0, num_bins)
        width = rng.uniform(1.0, num_bins / 8.0)
        belief = np.exp(-0.5 * ((grid - center) / width) ** 2)
        if i % 3 == 0:
            belief[0] += belief.sum() * rng.uniform(0.0, 1.0)
        yield belief / belief.sum()


class TestForecastEquivalence:
    @pytest.mark.parametrize("percentile", [0.05, 0.25, 0.5, 0.95])
    def test_fused_matches_loop_on_random_beliefs(self, rate_model, percentile):
        for belief in _random_beliefs(rate_model.params.num_bins, 50):
            loop = rate_model._cumulative_quantile_loop(belief, percentile)
            fused = rate_model._cumulative_quantile_fused(belief, percentile)
            np.testing.assert_allclose(fused, loop, atol=1e-12)

    @pytest.mark.parametrize("percentile", [0.05, 0.5, 0.95])
    def test_default_path_matches_loop(self, rate_model, percentile):
        beliefs = list(_random_beliefs(rate_model.params.num_bins, 50))
        beliefs += list(_concentrated_beliefs(rate_model.params.num_bins, 50))
        for belief in beliefs:
            loop = rate_model._cumulative_quantile_loop(belief, percentile)
            fast = rate_model.cumulative_quantile(belief, percentile)
            np.testing.assert_allclose(fast, loop, atol=1e-12)

    def test_equivalence_holds_for_partial_horizons(self, rate_model):
        belief = next(_random_beliefs(rate_model.params.num_bins, 1))
        for ticks in range(1, rate_model.params.forecast_ticks + 1):
            loop = rate_model._cumulative_quantile_loop(belief, 0.05, num_ticks=ticks)
            fast = rate_model.cumulative_quantile(belief, 0.05, num_ticks=ticks)
            assert len(fast) == ticks
            np.testing.assert_allclose(fast, loop, atol=1e-12)

    def test_equivalence_on_small_nondefault_model(self):
        params = RateModelParams(num_bins=32, max_rate=500.0, forecast_ticks=4)
        model = RateModel(params, forecast_paths=500)
        for belief in _random_beliefs(32, 25):
            loop = model._cumulative_quantile_loop(belief, 0.05)
            fast = model.cumulative_quantile(belief, 0.05)
            np.testing.assert_allclose(fast, loop, atol=1e-12)


class TestLikelihoodCache:
    @pytest.mark.parametrize("packets", [0.0, 1.0, 3.0, 8.0, 20.0])
    def test_observation_cache_exact_for_integer_counts(self, rate_model, packets):
        cached = rate_model.observation_likelihood(packets)
        uncached = rate_model._compute_likelihood(packets, censored=False)
        assert np.array_equal(cached, uncached)
        # Repeated lookups serve the identical (shared, read-only) vector.
        assert rate_model.observation_likelihood(packets) is cached

    @pytest.mark.parametrize("packets", [0.5, 0.1, 7.25, 751.0 / 1500.0])
    def test_observation_cache_exact_for_fractional_counts(self, rate_model, packets):
        cached_or_direct = rate_model.observation_likelihood(packets)
        uncached = rate_model._compute_likelihood(packets, censored=False)
        assert np.array_equal(cached_or_direct, uncached)

    @pytest.mark.parametrize("packets", [0.0, 1.0, 0.5, 6.0, 2.0 / 3.0])
    def test_censored_cache_exact(self, rate_model, packets):
        cached_or_direct = rate_model.censored_likelihood(packets)
        uncached = rate_model._compute_likelihood(packets, censored=True)
        assert np.array_equal(cached_or_direct, uncached)

    def test_outage_bin_special_cases(self, rate_model):
        # Exact observation: the outage bin can only ever produce zero.
        assert rate_model.observation_likelihood(0.0)[0] == 1.0
        assert rate_model.observation_likelihood(1.0)[0] == 0.0
        assert rate_model.observation_likelihood(0.5)[0] == 0.0
        # Censored: zero is a vacuous bound (all ones); any positive bound
        # rules the outage bin out entirely.
        assert np.all(rate_model.censored_likelihood(0.0) == 1.0)
        assert rate_model.censored_likelihood(1.0)[0] == 0.0
        assert rate_model.censored_likelihood(0.5)[0] == 0.0

    def test_cached_vectors_are_read_only(self, rate_model):
        cached = rate_model.observation_likelihood(4.0)
        with pytest.raises(ValueError):
            cached[0] = 123.0

    def test_off_grid_observations_bypass_the_cache(self, rate_model):
        # An observation not representable at 1-byte resolution must be
        # computed directly (and therefore stay writable).
        off_grid = 1e-5
        likelihood = rate_model.observation_likelihood(off_grid)
        assert likelihood.flags.writeable
        assert np.array_equal(
            likelihood, rate_model._compute_likelihood(off_grid, censored=False)
        )

    def test_negative_observations_still_rejected(self, rate_model):
        with pytest.raises(ValueError):
            rate_model.observation_likelihood(-1.0)
        with pytest.raises(ValueError):
            rate_model.censored_likelihood(-0.5)


class TestLazyForecast:
    def test_forecast_reused_until_next_tick(self, rate_model):
        forecaster = BayesianForecaster(model=rate_model)
        forecaster.tick(3000.0)
        calls = 0
        original = rate_model.cumulative_quantile

        def counting(*args, **kwargs):
            nonlocal calls
            calls += 1
            return original(*args, **kwargs)

        try:
            rate_model.cumulative_quantile = counting  # type: ignore[method-assign]
            first = forecaster.forecast()
            second = forecaster.forecast()
            assert calls == 1
            np.testing.assert_array_equal(first, second)
            forecaster.tick(3000.0)
            third = forecaster.forecast()
            assert calls == 2
            assert third.shape == first.shape
        finally:
            del rate_model.cumulative_quantile

    def test_forecast_returns_independent_copies(self, rate_model):
        forecaster = BayesianForecaster(model=rate_model)
        forecaster.tick(3000.0)
        first = forecaster.forecast()
        first[:] = -1.0
        second = forecaster.forecast()
        assert np.all(second >= 0.0)

    def test_observation_free_tick_invalidates_the_cache(self, rate_model):
        forecaster = BayesianForecaster(model=rate_model)
        forecaster.tick(6000.0)
        before = forecaster.forecast()
        for _ in range(20):
            forecaster.tick(None)
        after = forecaster.forecast()
        # Twenty unobserved ticks spread the belief; the cached forecast
        # must not be served stale.
        assert not np.array_equal(before, after)


def test_empirical_cdf_technique_matches_sort_searchsorted():
    """bincount+cumsum per row == the sort+searchsorted formulation."""
    rng = np.random.default_rng(3)
    rows, paths, grid = 17, 400, 31
    clipped = rng.integers(0, grid, size=(rows, paths))
    offsets = np.arange(rows)[:, None] * grid
    histogram = np.bincount((clipped + offsets).ravel(), minlength=rows * grid)
    fast = histogram.reshape(rows, grid).cumsum(axis=1) / paths
    count_grid = np.arange(grid)
    slow = np.apply_along_axis(
        np.searchsorted, 1, np.sort(clipped, axis=1), count_grid, side="right"
    ) / paths
    np.testing.assert_array_equal(fast, slow)
