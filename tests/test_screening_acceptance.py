"""Acceptance bar for the analytic screening tier (docs/analytic.md).

One perf-marked end-to-end run: a 32 × 32 ``loss × scale`` Reno grid on a
noise-free steady link, screened with the default :class:`ScreenConfig`,
must

* emulate at most 25% of the 1024 cells (the measured figure is ~5%), and
* render *exactly* the same starred frontier as the full unscreened run —
  screening may only discard cells that were never going to be frontier
  operating points.

The steady link matters: on the volatile registry channels the measured
self-inflicted delay of loss-limited cells is trace-noise-driven and no
closed form predicts its ordering, which is why those cells carry
uncertainty >= the screening threshold and are always emulated.  The
fidelity claim screening makes — and this test enforces — is therefore
exercised where predictions are trustworthy enough to discard anything.
"""

from __future__ import annotations

import pytest

from repro.experiments.analytic import ScreenConfig
from repro.experiments.runner import RunConfig
from repro.experiments.sweeps import (
    GridSpec,
    pareto_frontier,
    render_grid_frontiers,
    run_grid,
)
from repro.traces.channel import ChannelConfig
from repro.traces.networks import LinkSpec

pytestmark = pytest.mark.perf

STEADY_LINK = LinkSpec(
    network="Steady 9.6 Mbit/s",
    direction="downlink",
    config=ChannelConfig(
        mean_rate=800.0,
        volatility=0.0,
        outage_rate=0.0,
        fade_depth=0.0,
        max_rate=4000.0,
    ),
    seed=77,
)

#: 32 log-spaced loss rates over 0.1%–10% and 32 log-spaced trace scales
#: over 0.25×–4× — 1024 cells spanning the loss-limited regime
LOSSES = tuple(0.001 * (100.0 ** (i / 31.0)) for i in range(32))
SCALES = tuple(0.25 * (16.0 ** (i / 31.0)) for i in range(32))

ACCEPTANCE_SPEC = GridSpec(
    parameters=("loss", "scale"),
    values=(LOSSES, SCALES),
    schemes=("Reno",),
    links=(STEADY_LINK,),
)
ACCEPTANCE_CONFIG = RunConfig(duration=5.0, warmup=1.0)


def _frontier_stars(data):
    """The measured frontier as (label, scheme) pairs, plus the rendered
    starred lines — both must survive screening untouched."""
    entries = [
        (point.label, row)
        for point in data.points
        for row in point.ok_results
    ]
    flags = pareto_frontier([row for _, row in entries])
    stars = {
        (label, row.scheme)
        for (label, row), on_frontier in zip(entries, flags)
        if on_frontier
    }
    rendered = {
        line
        for line in render_grid_frontiers(data).splitlines()
        if line.rstrip().endswith("*")
    }
    return stars, rendered


def test_screened_1024_cell_grid_keeps_the_exact_frontier():
    screened = run_grid(
        ACCEPTANCE_SPEC,
        config=ACCEPTANCE_CONFIG,
        backend="batched",
        screen=ScreenConfig(),
    )
    total = sum(len(point.results) for point in screened.points)
    emulated = total - len(screened.screened)
    assert total == 1024
    # the whole point of the tier: at most a quarter of the grid emulated
    assert emulated <= total * 0.25, f"screening emulated {emulated}/{total} cells"
    assert len(screened.screened) > 0

    unscreened = run_grid(
        ACCEPTANCE_SPEC, config=ACCEPTANCE_CONFIG, backend="batched"
    )
    expected_stars, expected_lines = _frontier_stars(unscreened)
    actual_stars, actual_lines = _frontier_stars(screened)

    assert expected_stars, "unscreened run produced an empty frontier"
    # every frontier operating point of the full run was emulated and
    # starred identically in the screened run — no misses, no extras
    assert actual_stars == expected_stars
    assert actual_lines == expected_lines
