"""Golden-fixture suite for the queue-management grid (aqm × qlimit).

Mirrors ``test_golden_matrix.py`` for the scenario-grid layer: the exact
schema-v2 CSV and JSON bytes of a small ``aqm × qlimit × flows`` grid — the
paper's Section 5.4/5.7 crossover, with per-flow metrics — are checked in
under ``tests/fixtures/`` and must be reproduced bit-for-bit by the serial
runner, the ``jobs=2`` process-pool runner, and a shared warmed pool.  Any
drift in queue construction, CoDel decisions, per-flow accounting, or the
export encoding shows up here as an exact-compare failure.
"""

from __future__ import annotations

from pathlib import Path

import pytest

from repro.experiments.exports import (
    export_csv,
    export_json,
    export_rows,
    grid_data_from_json,
    parse_csv,
)
from repro.experiments.parallel import shared_pool
from repro.experiments.runner import RunConfig, run_scheme_on_link
from repro.experiments.sweeps import GridSpec, expand_grid, run_grid

pytestmark = pytest.mark.golden

FIXTURES = Path(__file__).parent / "fixtures"
GOLDEN_CSV = FIXTURES / "golden_aqm_grid.csv"
GOLDEN_JSON = FIXTURES / "golden_aqm_grid.json"

#: the frozen grid: both disciplines x {deep buffer, 30 kB} x the paper's
#: two-flow competing mix, per-flow metrics on
GOLDEN_SPEC = GridSpec(
    parameters=("aqm", "qlimit", "flows"),
    values=((0.0, 1.0), (0.0, 30000.0), (2.0,)),
    schemes=("Sprout",),
    links=("AT&T LTE uplink",),
)
GOLDEN_CONFIG = RunConfig(duration=6.0, warmup=1.0, per_flow=True)


@pytest.fixture(scope="module")
def grid_data():
    return run_grid(GOLDEN_SPEC, config=GOLDEN_CONFIG, jobs=1)


def test_csv_export_matches_golden_fixture(grid_data):
    assert export_csv(grid_data) == GOLDEN_CSV.read_text()


def test_json_export_matches_golden_fixture(grid_data):
    assert export_json(grid_data) == GOLDEN_JSON.read_text()


def test_parallel_grid_reproduces_golden_exactly():
    data = run_grid(GOLDEN_SPEC, config=GOLDEN_CONFIG, jobs=2)
    assert export_csv(data) == GOLDEN_CSV.read_text()
    assert export_json(data) == GOLDEN_JSON.read_text()


def test_shared_pool_grid_reproduces_golden_exactly():
    with shared_pool(2):
        data = run_grid(GOLDEN_SPEC, config=GOLDEN_CONFIG)
    assert export_csv(data) == GOLDEN_CSV.read_text()
    assert export_json(data) == GOLDEN_JSON.read_text()


def test_grid_cells_bit_identical_to_serial_single_cells(grid_data):
    """The acceptance bar: every aqm × qlimit cell equals the same cell run
    serially by hand through ``run_scheme_on_link`` — per-flow rows included."""
    cells = expand_grid(GOLDEN_SPEC, GOLDEN_CONFIG)
    assert len(cells) == len(grid_data.points)
    for cell, point in zip(cells, grid_data.points):
        reference = run_scheme_on_link(*cell)
        (row,) = point.results
        assert row.as_dict() == reference.as_dict()
        assert row.flows is not None and len(row.flows) >= 2


def test_golden_fixture_round_trips(grid_data):
    rows = parse_csv(GOLDEN_CSV.read_text())
    assert rows == export_rows(grid_data)
    rebuilt = grid_data_from_json(GOLDEN_JSON.read_text())
    assert rebuilt.spec == grid_data.spec
    for mine, theirs in zip(grid_data.points, rebuilt.points):
        assert [r.as_dict() for r in mine.results] == [
            r.as_dict() for r in theirs.results
        ]


def test_aqm_actually_changes_the_physics(grid_data):
    """Guard against the axis silently not reaching the queue: CoDel points
    must differ from the drop-tail points measured on the same trace."""
    drop_tail = grid_data.slice("aqm", 0.0)
    codel = grid_data.slice("aqm", 1.0)
    drop_tail_rows = [r.as_dict() for p in drop_tail for r in p.results]
    codel_rows = [r.as_dict() for p in codel for r in p.results]
    assert drop_tail_rows != codel_rows
