"""Tests for the Saturator measurement tool."""

import pytest

from repro.traces.channel import ChannelConfig
from repro.traces.format import trace_mean_rate
from repro.traces.saturator import (
    SaturatorConfig,
    SaturatorSender,
    SaturatorSink,
    record_trace_with_saturator,
)


def test_saturator_measures_steady_channel_capacity(steady_channel_config):
    duration = 20.0
    measured = record_trace_with_saturator(steady_channel_config, duration, seed=7)
    measured_rate = trace_mean_rate(measured)
    expected = steady_channel_config.mean_rate * 1500 * 8
    # The Saturator keeps the queue backlogged, so the measured trace should
    # recover the channel's capacity closely.
    assert measured_rate == pytest.approx(expected, rel=0.15)


def test_saturator_keeps_rtt_in_target_band(steady_channel_config):
    from repro.simulation.event_loop import EventLoop
    from repro.simulation.endpoints import Host
    from repro.simulation.path import DuplexLinkConfig, DuplexPath
    from repro.traces.channel import CellularChannel

    channel = CellularChannel(steady_channel_config, seed=3)
    trace = channel.delivery_times(30.0)
    feedback = [i * 0.002 for i in range(1, 15000)]
    loop = EventLoop()
    path = DuplexPath(loop, DuplexLinkConfig(forward_trace=trace, reverse_trace=feedback))
    sender = SaturatorSender()
    sink = SaturatorSink()
    sender_host = Host(loop, sender, path.send_from_a)
    sink_host = Host(loop, sink, path.send_from_b)
    path.attach_a(sender_host.deliver)
    path.attach_b(sink_host.deliver)
    sender_host.start()
    sink_host.start()
    loop.run_until(30.0)

    # After convergence the observed RTTs should mostly sit inside the
    # 750 ms - 3000 ms operating band of Section 4.1.
    late_samples = [r for r in sender.rtt_samples[len(sender.rtt_samples) // 2:]]
    assert late_samples, "saturator collected no RTT samples"
    in_band = [r for r in late_samples if 0.5 <= r <= 3.5]
    assert len(in_band) / len(late_samples) > 0.8


def test_saturator_config_defaults_match_paper():
    config = SaturatorConfig()
    assert config.rtt_floor == pytest.approx(0.750)
    assert config.rtt_ceiling == pytest.approx(3.000)


def test_saturator_window_adjusts_down_on_high_rtt():
    sender = SaturatorSender(SaturatorConfig(initial_window=100))

    class FakeCtx:
        def __init__(self):
            self.sent = []

        def now(self):
            return 10.0

        def send(self, packet):
            self.sent.append(packet)

    sender.start(FakeCtx())
    window_before = sender.window
    from repro.simulation.packet import Packet

    sender.on_packet(Packet(headers={"echo_sent_time": 5.0}), now=10.0)  # RTT 5 s
    assert sender.window < window_before


def test_saturator_window_adjusts_up_on_low_rtt():
    sender = SaturatorSender(SaturatorConfig(initial_window=50))

    class FakeCtx:
        def now(self):
            return 1.0

        def send(self, packet):
            pass

    sender.start(FakeCtx())
    window_before = sender.window
    from repro.simulation.packet import Packet

    sender.on_packet(Packet(headers={"echo_sent_time": 0.9}), now=1.0)  # RTT 100 ms
    assert sender.window > window_before
