"""Tests for the parallel experiment matrix runner.

The key property is bit-identical equivalence with the serial runner: the
parallel path must return the same ``SchemeResult`` rows, in the same
(scheme-major, link-minor) order, with exactly equal metrics.
"""

from __future__ import annotations

import pickle

import pytest

from repro.baselines.base import AckingReceiver
from repro.baselines.vegas import VegasSender
from repro.experiments.parallel import _poolable, default_jobs, run_matrix
from repro.experiments.registry import SchemeSpec, get_scheme
from repro.experiments.runner import RunConfig
from repro.experiments.runner import run_matrix as run_matrix_serial

SCHEMES_2 = ["Vegas", "Skype"]
LINKS_2 = ["AT&T LTE uplink", "Verizon LTE uplink"]


@pytest.fixture(scope="module")
def tiny_config() -> RunConfig:
    return RunConfig(duration=10.0, warmup=2.0)


@pytest.fixture(scope="module")
def serial_results(tiny_config):
    return run_matrix_serial(SCHEMES_2, LINKS_2, config=tiny_config)


def test_parallel_matches_serial_bit_identically(tiny_config, serial_results):
    parallel_results = run_matrix(SCHEMES_2, LINKS_2, config=tiny_config, jobs=4)
    assert len(parallel_results) == len(serial_results)
    for serial, parallel in zip(serial_results, parallel_results):
        # Same cell in the same position, and exactly equal metrics.
        assert (parallel.scheme, parallel.link) == (serial.scheme, serial.link)
        assert parallel.as_dict() == serial.as_dict()


def test_parallel_forwards_progress_per_result(tiny_config):
    seen = []
    results = run_matrix(
        SCHEMES_2, LINKS_2, config=tiny_config, progress=seen.append, jobs=2
    )
    assert len(seen) == len(results) == 4
    # Completion order may differ from matrix order, but the same cells
    # must be reported.
    assert sorted((r.scheme, r.link) for r in seen) == sorted(
        (r.scheme, r.link) for r in results
    )


def test_jobs_one_is_the_serial_path(tiny_config, serial_results):
    results = run_matrix(SCHEMES_2, LINKS_2, config=tiny_config, jobs=1)
    assert [r.as_dict() for r in results] == [r.as_dict() for r in serial_results]


def test_unpicklable_scheme_runs_locally(tiny_config):
    ad_hoc = SchemeSpec(
        name="Vegas (ad hoc)",
        factory=lambda: (VegasSender(), AckingReceiver()),
    )
    with pytest.raises(Exception):
        pickle.dumps(ad_hoc)
    results = run_matrix([ad_hoc, "Vegas"], LINKS_2[:1], config=tiny_config, jobs=2)
    assert [r.scheme for r in results] == ["Vegas (ad hoc)", "Vegas"]
    reference = run_matrix_serial(["Vegas"], LINKS_2[:1], config=tiny_config)
    assert results[0].throughput_bps == reference[0].throughput_bps
    assert results[1].as_dict() == reference[0].as_dict()


def test_poolable_sends_registry_specs_by_name():
    spec = get_scheme("Vegas")
    assert _poolable(spec) == "Vegas"
    assert _poolable("anything") == "anything"
    assert _poolable(SchemeSpec(name="x", factory=lambda: None)) is None


def test_jobs_validation(tiny_config):
    with pytest.raises(ValueError):
        run_matrix(SCHEMES_2, LINKS_2, config=tiny_config, jobs=-1)


def test_default_jobs_positive():
    assert default_jobs() >= 1


def test_shared_pool_exit_shuts_down_rebuilt_pool():
    """Kill→rebuild→context-exit leaves no orphaned worker processes.

    The fault-tolerant scheduler may kill and replace the shared pool in
    place mid-batch (``_PoolHost.rebuild``); the ``shared_pool()`` context
    exit must then shut down the *current* swapped-in pool, not the dead
    original it opened.
    """
    import time as _time

    from repro.experiments.parallel import _PoolHost, active_pool, shared_pool

    with shared_pool(2) as original:
        assert active_pool() is original
        host = _PoolHost(original, workers=2, shared=True)
        host.rebuild()
        replacement = host.pool
        assert replacement is not original
        # The swap is visible module-wide: later batches get the live pool.
        assert active_pool() is replacement
        # The replacement genuinely works.
        assert replacement.submit(int, "7").result(timeout=60) == 7
        workers = list(replacement._processes.values())
        assert workers
    # Context exit: no shared pool remains, the replacement is shut down
    # (no new work accepted) and its workers are reaped, not orphaned.
    assert active_pool() is None
    with pytest.raises(RuntimeError):
        replacement.submit(int, "8")
    deadline = _time.time() + 30
    for process in workers:
        process.join(max(0.0, deadline - _time.time()))
        assert not process.is_alive()
