"""Tests for the virtual clock."""

import pytest

from repro.simulation.clock import Clock


def test_clock_starts_at_zero_by_default():
    assert Clock().now() == 0.0


def test_clock_starts_at_given_time():
    assert Clock(5.5).now() == 5.5


def test_clock_rejects_negative_start():
    with pytest.raises(ValueError):
        Clock(-1.0)


def test_clock_advances_forward():
    clock = Clock()
    clock.advance_to(1.25)
    assert clock.now() == 1.25
    clock.advance_to(1.25)  # advancing to the same instant is allowed
    assert clock.now() == 1.25


def test_clock_rejects_backward_motion():
    clock = Clock(10.0)
    with pytest.raises(ValueError):
        clock.advance_to(9.999)
