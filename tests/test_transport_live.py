"""Live loopback transfers: the transport acceptance bar, end to end.

These tests move real UDP datagrams over 127.0.0.1 (marker ``transport``,
``make test-live``) and are skipped wholesale where the environment forbids
loopback sockets.  The loss tests reuse the deterministic Bernoulli-gate
idiom of :mod:`repro.testing.faults`: the drop decision hashes
``(seed, wire_seq, attempt)``, so a retransmitted datagram rolls a fresh
coin and the acceptance property — a sized transfer completes with zero
packets lost forever under 10% injected datagram loss — is reproducible.
"""

from __future__ import annotations

import pytest

from repro.experiments.exports import (
    export_csv,
    export_json,
    grid_data_from_json,
    parse_csv,
    parse_json,
)
from repro.transport import LiveConfig, run_live_suite, run_live_transfer, sockets_available
from repro.transport.endpoint import bernoulli_loss_gate
from repro.transport.harness import (
    LIVE_LINK,
    LIVE_SCHEME,
    live_grid_data,
    render_live_results,
)

pytestmark = [
    pytest.mark.transport,
    pytest.mark.skipif(
        not sockets_available(), reason="loopback UDP sockets unavailable"
    ),
]

#: small enough to finish in well under a second at loopback rates
TRANSFER_BYTES = 64 * 1024


# ------------------------------------------------------------ clean channel


def test_clean_loopback_transfer_completes():
    result = run_live_transfer(LiveConfig(transfer_bytes=TRANSFER_BYTES, repeats=1))
    assert result.completed
    assert result.closed  # the receiver saw the CLOSE handshake
    assert result.lost_forever == 0
    assert result.injected_drops == 0
    assert result.payload_bytes >= TRANSFER_BYTES
    assert result.throughput_bps > 0
    assert result.duration_s > 0
    # Real one-way delays were measured for every delivered packet.
    assert result.delay_percentiles_s["p95"] == result.delay_percentiles_s["p95"]
    assert result.min_delay_s >= 0.0


# ----------------------------------------------- the lossy acceptance bar


def test_lossy_loopback_transfer_loses_nothing_forever():
    """ISSUE acceptance: 10% injected datagram loss, zero packets lost forever."""
    result = run_live_transfer(
        LiveConfig(transfer_bytes=TRANSFER_BYTES, repeats=1, loss_rate=0.1, loss_seed=7),
        repeat=1,
    )
    assert result.completed
    assert result.lost_forever == 0
    assert result.injected_drops > 0  # the gate actually bit
    # Every injected drop was healed by a retransmission.
    assert result.total_retransmits >= result.injected_drops
    assert result.malformed == 0


def test_loss_gate_is_deterministic_and_attempt_sensitive():
    gate = bernoulli_loss_gate(0.5, seed=3)
    first = [gate(seq, 0) for seq in range(200)]
    assert first == [gate(seq, 0) for seq in range(200)]  # reproducible
    assert any(first)  # drops some
    assert not all(first)  # passes some
    # A retransmit (attempt 1) rolls a fresh coin, so a dropped wire seq
    # is not doomed to be dropped forever.
    assert first != [gate(seq, 1) for seq in range(200)]


def test_loss_gate_rejects_bad_probability():
    with pytest.raises(ValueError):
        bernoulli_loss_gate(1.0)
    with pytest.raises(ValueError):
        bernoulli_loss_gate(-0.1)


# ------------------------------------------------------- harness packaging


@pytest.fixture(scope="module")
def live_suite():
    config = LiveConfig(transfer_bytes=TRANSFER_BYTES, repeats=2, loss_rate=0.05)
    return run_live_suite(config)


def test_live_suite_runs_every_repeat(live_suite):
    grid, results = live_suite
    assert [result.repeat for result in results] == [1, 2]
    assert all(result.completed for result in results)
    assert grid.spec.parameters == ("repeat",)
    assert grid.spec.schemes == (LIVE_SCHEME,)
    assert grid.spec.links == (LIVE_LINK,)
    assert len(grid.points) == 2


def test_live_results_render_as_a_table(live_suite):
    _, results = live_suite
    text = render_live_results(results)
    assert "Live loopback" in text
    assert "tput (kbps)" in text
    assert text.count("yes") == len(results)


def test_live_grid_exports_parse_through_schema_v4(live_suite):
    """The whole point of the SchemeResult packaging: existing parsers apply."""
    grid, results = live_suite
    rows = parse_csv(export_csv(grid))
    assert len(rows) == len(results)
    assert {row["scheme"] for row in rows} == {LIVE_SCHEME}
    assert {row["link"] for row in rows} == {LIVE_LINK}
    assert {row["repeat"] for row in rows} == {1.0, 2.0}

    payload = parse_json(export_json(grid))
    rebuilt = grid_data_from_json(export_json(grid))
    assert payload["kind"] == "grid"
    assert rebuilt.spec.parameters == ("repeat",)
    extra = rebuilt.points[0].results[0].extra
    assert extra["live_completed"] == 1.0
    assert extra["live_transfer_bytes"] == float(TRANSFER_BYTES)


def test_scheme_result_extra_carries_the_transport_counters(live_suite):
    _, results = live_suite
    extra = results[0].to_scheme_result().extra
    for key in (
        "live_repeat",
        "live_datagrams_sent",
        "live_retransmits",
        "live_injected_drops",
        "live_lost_forever",
        "live_duplicates",
    ):
        assert key in extra


def test_live_grid_data_rejects_empty_results():
    with pytest.raises(ValueError):
        live_grid_data([])


# ------------------------------------------------------------- config guard


@pytest.mark.parametrize(
    "kwargs",
    [
        {"transfer_bytes": 0},
        {"repeats": 0},
        {"loss_rate": 1.0},
        {"loss_rate": -0.1},
        {"deadline": 0.0},
    ],
)
def test_live_config_rejects_bad_knobs(kwargs):
    with pytest.raises(ValueError):
        LiveConfig(**kwargs)
