"""Live loopback transfers: the transport acceptance bar, end to end.

These tests move real UDP datagrams over 127.0.0.1 (marker ``transport``,
``make test-live``) and are skipped wholesale where the environment forbids
loopback sockets.  The loss tests reuse the deterministic Bernoulli-gate
idiom of :mod:`repro.testing.faults`: the drop decision hashes
``(seed, wire_seq, attempt)``, so a retransmitted datagram rolls a fresh
coin and the acceptance property — a sized transfer completes with zero
packets lost forever under 10% injected datagram loss — is reproducible.
"""

from __future__ import annotations

import pytest

from repro.experiments.exports import (
    export_csv,
    export_json,
    grid_data_from_json,
    parse_csv,
    parse_json,
)
from repro.transport import LiveConfig, run_live_suite, run_live_transfer, sockets_available
from repro.transport.endpoint import bernoulli_loss_gate
from repro.transport.harness import (
    LIVE_LINK,
    LIVE_SCHEME,
    live_grid_data,
    render_live_results,
)

pytestmark = [
    pytest.mark.transport,
    pytest.mark.skipif(
        not sockets_available(), reason="loopback UDP sockets unavailable"
    ),
]

#: small enough to finish in well under a second at loopback rates
TRANSFER_BYTES = 64 * 1024


# ------------------------------------------------------------ clean channel


def test_clean_loopback_transfer_completes():
    result = run_live_transfer(LiveConfig(transfer_bytes=TRANSFER_BYTES, repeats=1))
    assert result.completed
    assert result.closed  # the receiver saw the CLOSE handshake
    assert result.lost_forever == 0
    assert result.injected_drops == 0
    assert result.payload_bytes >= TRANSFER_BYTES
    assert result.throughput_bps > 0
    assert result.duration_s > 0
    # Real one-way delays were measured for every delivered packet.
    assert result.delay_percentiles_s["p95"] == result.delay_percentiles_s["p95"]
    assert result.min_delay_s >= 0.0


# ----------------------------------------------- the lossy acceptance bar


def test_lossy_loopback_transfer_loses_nothing_forever():
    """ISSUE acceptance: 10% injected datagram loss, zero packets lost forever."""
    result = run_live_transfer(
        LiveConfig(transfer_bytes=TRANSFER_BYTES, repeats=1, loss_rate=0.1, loss_seed=7),
        repeat=1,
    )
    assert result.completed
    assert result.lost_forever == 0
    assert result.injected_drops > 0  # the gate actually bit
    # Every injected drop was healed by a retransmission.
    assert result.total_retransmits >= result.injected_drops
    assert result.malformed == 0


def test_loss_gate_is_deterministic_and_attempt_sensitive():
    gate = bernoulli_loss_gate(0.5, seed=3)
    first = [gate(seq, 0) for seq in range(200)]
    assert first == [gate(seq, 0) for seq in range(200)]  # reproducible
    assert any(first)  # drops some
    assert not all(first)  # passes some
    # A retransmit (attempt 1) rolls a fresh coin, so a dropped wire seq
    # is not doomed to be dropped forever.
    assert first != [gate(seq, 1) for seq in range(200)]


def test_loss_gate_rejects_bad_probability():
    with pytest.raises(ValueError):
        bernoulli_loss_gate(1.0)
    with pytest.raises(ValueError):
        bernoulli_loss_gate(-0.1)


# ------------------------------------------------------- harness packaging


@pytest.fixture(scope="module")
def live_suite():
    config = LiveConfig(transfer_bytes=TRANSFER_BYTES, repeats=2, loss_rate=0.05)
    return run_live_suite(config)


def test_live_suite_runs_every_repeat(live_suite):
    grid, results = live_suite
    assert [result.repeat for result in results] == [1, 2]
    assert all(result.completed for result in results)
    assert grid.spec.parameters == ("repeat",)
    assert grid.spec.schemes == (LIVE_SCHEME,)
    assert grid.spec.links == (LIVE_LINK,)
    assert len(grid.points) == 2


def test_live_results_render_as_a_table(live_suite):
    _, results = live_suite
    text = render_live_results(results)
    assert "Live loopback" in text
    assert "tput (kbps)" in text
    assert text.count("yes") == len(results)


def test_live_grid_exports_parse_through_schema_v4(live_suite):
    """The whole point of the SchemeResult packaging: existing parsers apply."""
    grid, results = live_suite
    rows = parse_csv(export_csv(grid))
    assert len(rows) == len(results)
    assert {row["scheme"] for row in rows} == {LIVE_SCHEME}
    assert {row["link"] for row in rows} == {LIVE_LINK}
    assert {row["repeat"] for row in rows} == {1.0, 2.0}

    payload = parse_json(export_json(grid))
    rebuilt = grid_data_from_json(export_json(grid))
    assert payload["kind"] == "grid"
    assert rebuilt.spec.parameters == ("repeat",)
    extra = rebuilt.points[0].results[0].extra
    assert extra["live_completed"] == 1.0
    assert extra["live_transfer_bytes"] == float(TRANSFER_BYTES)


def test_scheme_result_extra_carries_the_transport_counters(live_suite):
    _, results = live_suite
    extra = results[0].to_scheme_result().extra
    for key in (
        "live_repeat",
        "live_datagrams_sent",
        "live_retransmits",
        "live_injected_drops",
        "live_lost_forever",
        "live_duplicates",
    ):
        assert key in extra


def test_live_grid_data_rejects_empty_results():
    with pytest.raises(ValueError):
        live_grid_data([])


# ------------------------------------------------------------- config guard


@pytest.mark.parametrize(
    "kwargs",
    [
        {"transfer_bytes": 0},
        {"repeats": 0},
        {"loss_rate": 1.0},
        {"loss_rate": -0.1},
        {"deadline": 0.0},
        {"watchdog": -1.0},
        {"impair": "bogus:p=0.1"},
        {"impair": "ge:p=2"},
    ],
)
def test_live_config_rejects_bad_knobs(kwargs):
    with pytest.raises(ValueError):
        LiveConfig(**kwargs)


def test_live_config_watchdog_resolution():
    from repro.transport.endpoint import default_watchdog

    assert LiveConfig(deadline=12.0).resolved_watchdog() == pytest.approx(3.0)
    assert LiveConfig(deadline=100.0).resolved_watchdog() == 4.0  # clamped high
    assert LiveConfig(deadline=1.0).resolved_watchdog() == 0.5  # clamped low
    assert LiveConfig(watchdog=0.0).resolved_watchdog() is None  # 0 disables
    assert LiveConfig(watchdog=2.5).resolved_watchdog() == 2.5
    assert default_watchdog(12.0) == pytest.approx(3.0)
    with pytest.raises(ValueError):
        default_watchdog(0.0)


# ----------------------------------------------------- hardened lifecycle


def test_close_handshake_is_acknowledged():
    if not sockets_available():
        pytest.skip("loopback UDP sockets unavailable")
    result = run_live_transfer(
        LiveConfig(transfer_bytes=16 * 1024, repeats=1, deadline=10.0), repeat=1
    )
    assert result.completed and result.closed
    assert result.close_acked  # CLOSE/CLOSE-ACK completed, not fire-and-forget
    assert result.event_counts.get("close_received", 0) == 1
    assert result.failure == ""


def test_watchdog_aborts_when_the_peer_goes_silent():
    import socket as socket_module

    from repro.transport.endpoint import SenderEndpoint, TransferAborted
    from repro.transport.endpoint import shared_monotonic_clock

    if not sockets_available():
        pytest.skip("loopback UDP sockets unavailable")
    # a bound-but-mute socket: datagrams vanish, nothing ever answers
    sink = socket_module.socket(socket_module.AF_INET, socket_module.SOCK_DGRAM)
    sink.bind(("127.0.0.1", 0))
    try:
        clock = shared_monotonic_clock()
        sender = SenderEndpoint(
            ("127.0.0.1", sink.getsockname()[1]),
            32 * 1024,
            clock,
            deadline=30.0,
            watchdog=0.6,
        )
        with pytest.raises(TransferAborted) as excinfo:
            sender.run()
    finally:
        sink.close()
    diagnosis = excinfo.value.diagnosis
    assert diagnosis.reason in ("peer-inactivity", "no-progress")
    assert 0.5 < diagnosis.elapsed_s < 5.0  # watchdog time, not the deadline
    assert diagnosis.datagrams_sent > 0
    assert diagnosis.events


def test_receiver_crash_propagates_as_structured_failure(monkeypatch):
    import time

    from repro.transport import harness as harness_module

    if not sockets_available():
        pytest.skip("loopback UDP sockets unavailable")

    def crashing_run(self):
        time.sleep(0.05)
        raise RuntimeError("synthetic receiver crash")

    monkeypatch.setattr(harness_module.ReceiverEndpoint, "run", crashing_run)
    start = time.monotonic()
    result = run_live_transfer(
        LiveConfig(transfer_bytes=1024 * 1024, repeats=1, deadline=20.0), repeat=1
    )
    elapsed = time.monotonic() - start
    assert elapsed < 5.0, "the sender must abort immediately, not wait out 20s"
    assert not result.completed
    assert result.failure == "receiver-failure"
    assert result.diagnosis is not None
    assert "synthetic receiver crash" in result.diagnosis.cause


def test_extras_surface_lifecycle_and_skip_counters():
    if not sockets_available():
        pytest.skip("loopback UDP sockets unavailable")
    result = run_live_transfer(
        LiveConfig(transfer_bytes=16 * 1024, repeats=1, deadline=10.0), repeat=1
    )
    extra = result.to_scheme_result().extra
    for key in (
        "live_ticks_skipped",
        "live_decode_errors",
        "live_close_acked",
        "live_close_retransmits",
        "live_quarantine_drops",
        "live_longest_stall_s",
        "live_failed",
    ):
        assert key in extra, key
    assert extra["live_close_acked"] == 1.0
    assert extra["live_failed"] == 0.0
    # event-ring kinds surface as live_ev_* counters
    assert extra.get("live_ev_close_received", 0.0) == 1.0


def test_render_includes_skip_and_decode_columns_and_failures():
    from repro.transport import LiveTransferResult
    from repro.transport.endpoint import TransferDiagnosis

    ok = LiveTransferResult(
        repeat=1, transfer_bytes=1000, completed=True, closed=True,
        duration_s=1.0, payload_bytes=1000, throughput_bps=8000.0,
        ticks_skipped=3, decode_errors=2,
    )
    failed = LiveTransferResult(
        repeat=2, transfer_bytes=1000, completed=False, closed=False,
        duration_s=2.0, payload_bytes=0, throughput_bps=0.0,
        failure="peer-inactivity",
        diagnosis=TransferDiagnosis(
            reason="peer-inactivity", role="sender", elapsed_s=2.0,
            last_heard_age_s=2.0, last_progress_age_s=2.0, datagrams_sent=10,
            feedback_received=0, decode_errors=0, total_retransmits=4,
            fast_retransmits=0, timeout_retransmits=4, rto_backoffs=2,
            outstanding=5, outstanding_bytes=500, ticks_skipped=0,
            quarantined_peers=0,
        ),
    )
    text = render_live_results([ok, failed])
    assert "skip" in text and "dec" in text
    assert "ABORT" in text
    assert "repeat 2 failed: peer-inactivity" in text
    assert "sender aborted: peer-inactivity" in text
