"""Tests for per-flow metrics (repro.metrics.flows) and their collection.

Three layers:

* unit — ``FlowMetrics`` / ``FlowAccumulator`` against hand-computed mux
  logs (throughput windowing, the delay-signal percentile, sorting, and
  the empty-flow/out-of-window corners);
* collection — ``RunConfig(per_flow=True)`` fills ``SchemeResult.flows``
  for multiplexed scenario cells (tunnelled flows included, via the egress
  hook) and leaves plain single-protocol cells untouched;
* integration — the Section 5.7 direction: a competing Cubic inflates
  Skype's delay tail under the drop-tail carrier queue (``aqm = 0``), and
  SproutTunnel brings it back down.
"""

from __future__ import annotations

import pytest

from repro.experiments.competing import competing_scheme
from repro.experiments.runner import RunConfig, run_scheme_on_link
from repro.metrics.delay import percentile_of_delay_signal
from repro.metrics.flows import (
    EXPORTED_FLOW_FIELDS,
    FlowAccumulator,
    FlowMetrics,
    attach_uplink_deliveries,
    flow_metrics_from_arrivals,
    flow_metrics_from_logs,
)
from repro.simulation.packet import Packet


def _packet(size: int, sent_at: float) -> Packet:
    packet = Packet(size=size)
    packet.sent_at = sent_at
    return packet


# ------------------------------------------------------------------- units


class TestFlowMetricsFromArrivals:
    def test_throughput_counts_only_in_window_bytes(self):
        # Two 1000-byte packets inside [1, 3], one before, one after.
        arrivals = [
            (0.5, _packet(1000, 0.4)),
            (1.5, _packet(1000, 1.4)),
            (2.5, _packet(1000, 2.4)),
            (3.5, _packet(1000, 3.4)),
        ]
        metrics = flow_metrics_from_arrivals(arrivals, 1.0, 3.0, "bulk")
        # 2000 bytes in a 2 s window = 8000 bits / 2 s.
        assert metrics.throughput_bps == pytest.approx(2000 * 8.0 / 2.0)
        assert metrics.packets == 2
        assert metrics.bytes == 2000
        assert metrics.flow == "bulk"

    def test_delay_tail_matches_delay_signal_percentile(self):
        # Deliveries at a constant 150 ms one-way delay: the instantaneous
        # delay signal the shared helper computes is the ground truth.
        arrivals = [(0.2 * i + 0.15, _packet(500, 0.2 * i)) for i in range(30)]
        metrics = flow_metrics_from_arrivals(arrivals, 1.0, 5.0, "flow")
        expected = percentile_of_delay_signal(
            [(t, p.sent_at) for t, p in arrivals], start_time=1.0, end_time=5.0
        )
        assert metrics.delay_95_s == expected
        # Constant 150 ms delay + 200 ms arrival spacing: the signal saws
        # between 0.15 and 0.35, so the 95th percentile sits near the top.
        assert 0.15 <= metrics.delay_95_s <= 0.35

    def test_no_arrivals_in_window_is_nan_delay_zero_throughput(self):
        metrics = flow_metrics_from_arrivals([], 0.0, 1.0, "idle")
        assert metrics.throughput_bps == 0.0
        assert metrics.delay_95_s != metrics.delay_95_s  # nan
        assert metrics.packets == 0

    def test_empty_window_rejected(self):
        with pytest.raises(ValueError):
            flow_metrics_from_arrivals([], 1.0, 1.0)

    def test_kbps_and_ms_conversions(self):
        metrics = FlowMetrics(throughput_bps=250000.0, delay_95_s=0.125, flow="f")
        assert metrics.throughput_kbps == 250.0
        assert metrics.delay_95_ms == 125.0


class TestFlowAccumulator:
    def test_record_and_metrics_sorted_by_flow_name(self):
        accumulator = FlowAccumulator()
        accumulator.record("zeta", 1.0, _packet(1000, 0.9))
        accumulator.record("alpha", 1.5, _packet(500, 1.4))
        metrics = accumulator.metrics(0.0, 2.0)
        assert [m.flow for m in metrics] == ["alpha", "zeta"]
        assert metrics[0].bytes == 500
        assert metrics[1].bytes == 1000

    def test_extend_absorbs_mux_log_shape(self):
        logs = {
            "skype": [(1.0, _packet(300, 0.95)), (1.2, _packet(300, 1.15))],
            "cubic": [(1.1, _packet(1500, 0.6))],
        }
        metrics = flow_metrics_from_logs(logs, 0.0, 2.0)
        by_flow = {m.flow: m for m in metrics}
        assert set(by_flow) == {"skype", "cubic"}
        assert by_flow["skype"].throughput_bps == pytest.approx(600 * 8.0 / 2.0)
        assert by_flow["cubic"].throughput_bps == pytest.approx(1500 * 8.0 / 2.0)
        # Cubic's one packet waited 0.5 s; skype's waited 0.05 s.
        assert by_flow["cubic"].delay_95_s > by_flow["skype"].delay_95_s

    def test_flows_with_no_observations_are_omitted(self):
        metrics = flow_metrics_from_logs({"quiet": []}, 0.0, 1.0)
        assert metrics == []


# ------------------------------------------------- uplink/feedback direction


class TestUplinkAccounting:
    """The downlink-first contract (module docstring of repro.metrics.flows).

    Throughput, the delay tail, and ``packets``/``bytes`` describe the
    receiver-side (downlink) direction only; the feedback direction is
    counted — where a sender-side mux log already sees it — into the
    diagnostic ``uplink_packets`` / ``uplink_bytes``, and nowhere else.
    """

    def test_uplink_deliveries_annotate_without_touching_downlink(self):
        metrics = FlowMetrics(
            throughput_bps=8000.0, delay_95_s=0.1, flow="cubic", packets=2, bytes=2000
        )
        uplink_logs = {
            "cubic": [
                (0.5, _packet(40, 0.45)),   # before the window: ignored
                (1.5, _packet(40, 1.45)),
                (2.5, _packet(40, 2.45)),
                (3.5, _packet(40, 3.45)),   # after the window: ignored
            ]
        }
        attach_uplink_deliveries([metrics], uplink_logs, 1.0, 3.0)
        assert metrics.uplink_packets == 2
        assert metrics.uplink_bytes == 80
        # The downlink numbers are untouched.
        assert metrics.throughput_bps == 8000.0
        assert metrics.packets == 2
        assert metrics.bytes == 2000

    def test_uplink_only_flows_gain_no_entry(self):
        measured = [FlowMetrics(throughput_bps=1.0, delay_95_s=0.1, flow="skype")]
        attach_uplink_deliveries(
            measured, {"ack-only": [(1.0, _packet(40, 0.9))]}, 0.0, 2.0
        )
        assert [m.flow for m in measured] == ["skype"]
        assert measured[0].uplink_packets == 0

    def test_uplink_counters_stay_out_of_the_export_schema(self):
        assert "uplink_packets" not in EXPORTED_FLOW_FIELDS
        assert "uplink_bytes" not in EXPORTED_FLOW_FIELDS

    def test_direct_scenario_counts_feedback_into_uplink_fields(self):
        """End to end: Cubic's ACK stream arrives at the sender-side mux and
        lands in the uplink counters — not in the flow's throughput."""
        scheme = competing_scheme(2, False)
        result = run_scheme_on_link(scheme, LINK, TINY)
        cubic = next(m for m in result.flows if m.flow == "cubic-1")
        assert cubic.uplink_packets > 0
        assert cubic.uplink_bytes > 0
        # Serialisation documents the downlink-only contract: the flow dict
        # in as_dict() (and hence every export) has no uplink keys.
        flow_dicts = result.as_dict()["flows"]
        assert all(set(d) == set(EXPORTED_FLOW_FIELDS) for d in flow_dicts)


# -------------------------------------------------------------- collection

TINY = RunConfig(duration=8.0, warmup=2.0, per_flow=True)
LINK = "AT&T LTE uplink"


class TestPerFlowCollection:
    def test_plain_scheme_has_no_flow_breakdown(self):
        result = run_scheme_on_link("Vegas", LINK, TINY)
        assert result.flows is None
        assert "flows" not in result.as_dict()

    def test_per_flow_off_keeps_scenario_cells_aggregate_only(self):
        scheme = competing_scheme(2, True)
        result = run_scheme_on_link(
            scheme, LINK, RunConfig(duration=8.0, warmup=2.0)
        )
        assert result.flows is None

    def test_direct_scenario_reports_client_flows(self):
        scheme = competing_scheme(2, False)
        result = run_scheme_on_link(scheme, LINK, TINY)
        flows = {m.flow for m in result.flows}
        assert {"cubic-1", "skype"} <= flows

    def test_tunnelled_scenario_reports_client_flows_via_egress(self):
        scheme = competing_scheme(2, True)
        result = run_scheme_on_link(scheme, LINK, TINY)
        flows = {m.flow: m for m in result.flows}
        # Client flows are logged by the egress hook; the tunnel's own
        # frames appear under their mux flow as well.
        assert {"cubic-1", "skype", "sprout-tunnel"} <= set(flows)
        assert flows["skype"].throughput_bps > 0
        assert flows["cubic-1"].throughput_bps > 0

    def test_per_flow_is_pure_collection(self):
        """The aggregate metrics are bit-identical with and without it."""
        scheme = competing_scheme(2, True)
        with_flows = run_scheme_on_link(scheme, LINK, TINY)
        without = run_scheme_on_link(
            scheme, LINK, RunConfig(duration=8.0, warmup=2.0)
        )
        stripped = dict(with_flows.as_dict())
        del stripped["flows"]
        assert stripped == without.as_dict()


# ------------------------------------------------------------- integration


@pytest.fixture(scope="module")
def section_57_cells():
    """The Skype + Cubic mix on the paper's Verizon LTE downlink, three
    ways: sharing the deep drop-tail carrier queue (``aqm = 0``), sharing a
    CoDel-managed queue (``aqm = 1``, the Section 5.4 in-network remedy),
    and carried through SproutTunnel (the end-to-end remedy)."""
    from repro.experiments.sweeps import SWEEP_PARAMETERS

    link = "Verizon LTE downlink"
    config = RunConfig(duration=30.0, warmup=6.0, per_flow=True)
    aqm_expand = SWEEP_PARAMETERS["aqm"].expand

    def run(tunnelled: bool, aqm: float):
        cell = aqm_expand(competing_scheme(2, tunnelled), link, config, aqm)
        return run_scheme_on_link(*cell)

    return {
        "drop-tail": run(False, 0.0),
        "codel": run(False, 1.0),
        "tunnel": run(True, 0.0),
    }


def _flow(result, name):
    return next(m for m in result.flows if m.flow == name)


class TestSection57Direction:
    def test_competing_cubic_inflates_skype_delay_under_drop_tail(
        self, section_57_cells
    ):
        """With ``aqm = 0`` the shared bufferbloat from the competing Cubic
        lands on Skype's delay tail; isolation (the tunnel) removes it.
        The paper reports a ~7x gap; require at least 2x."""
        contended = _flow(section_57_cells["drop-tail"], "skype")
        isolated = _flow(section_57_cells["tunnel"], "skype")
        assert contended.delay_95_s > 2.0 * isolated.delay_95_s

    def test_codel_at_the_carrier_queue_cuts_the_contended_tail(
        self, section_57_cells
    ):
        """The Section 5.4 crossover: the same contended mix under CoDel
        has a far smaller Skype delay tail than under drop-tail."""
        drop_tail = _flow(section_57_cells["drop-tail"], "skype")
        codel = _flow(section_57_cells["codel"], "skype")
        assert codel.delay_95_s < drop_tail.delay_95_s

    def test_tunnel_costs_cubic_some_throughput(self, section_57_cells):
        direct = _flow(section_57_cells["drop-tail"], "cubic-1")
        tunnelled = _flow(section_57_cells["tunnel"], "cubic-1")
        assert tunnelled.throughput_bps < direct.throughput_bps
