"""Tests for the adversarial impairment pipeline (repro.transport.impair).

Three concerns: the spec grammar surfaces every malformed token as one
``ImpairSpecError``; each stage implements its advertised impairment; and
the whole pipeline is seed-deterministic — same seed + spec reproduce a
bit-identical datagram-fate sequence and counters, the chaos suite's
standing gate.  A Hypothesis suite drives the reorder+duplicate
interaction through the receiver-side ``ReorderWindow`` to check the
transport's dedup logic absorbs anything the pipeline can emit.
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.transport.impair import (
    EVENT_RING_LIMIT,
    EventRing,
    ImpairSpecError,
    ImpairmentPipeline,
    PeerQuarantine,
    QUARANTINE_THRESHOLD,
    StageSpec,
    build_pipelines,
    parse_impair_spec,
    parse_quantity,
)
from repro.transport.reliable import ReorderWindow
from repro.transport.wire import seq_in_window


# ------------------------------------------------------------- spec parsing


def test_parse_quantity_units():
    assert parse_quantity("0.05") == 0.05
    assert parse_quantity("1.5s") == 1.5
    assert parse_quantity("40ms") == pytest.approx(0.04)
    assert parse_quantity("3mbit") == 3e6
    assert parse_quantity("250kbit") == 250e3
    assert parse_quantity("1gbit") == 1e9
    assert parse_quantity("9600bps") == 9600.0
    with pytest.raises(ImpairSpecError):
        parse_quantity("fast")


def test_parse_spec_full_example():
    stages = parse_impair_spec("ge:p=0.05,burst=8;reorder:p=0.02;blackout:at=2s,len=1.5s")
    assert [s.kind for s in stages] == ["ge", "reorder", "blackout"]
    assert stages[0].param("p") == 0.05
    assert stages[0].param("burst") == 8.0
    assert stages[2].param("at") == 2.0
    assert stages[2].param("len") == 1.5
    assert all(s.direction == "both" for s in stages)


def test_parse_spec_direction_and_empty():
    assert parse_impair_spec("") == ()
    assert parse_impair_spec(" ; ; ") == ()
    (stage,) = parse_impair_spec("loss:p=0.1,dir=down")
    assert stage.direction == "down"
    assert stage.applies_to("down") and not stage.applies_to("up")


@pytest.mark.parametrize(
    "spec, fragment",
    [
        ("bogus:p=0.1", "unknown impairment stage"),
        ("loss:q=0.1", "unknown parameter"),
        ("loss:p", "not key=value"),
        ("loss:p=2", "must be in [0, 1)"),
        ("loss:p=-0.1", "must be in [0, 1)"),
        ("ge:burst=0.5", "burst must be >= 1"),
        ("rate:queue=4096", "missing required parameter"),
        ("blackout:at=1s", "missing required parameter"),
        ("rate:bps=-3mbit", "must be positive"),
        ("loss:p=0.1,dir=sideways", "dir must be one of"),
        ("reorder:hold=banana", "cannot parse quantity"),
    ],
)
def test_parse_spec_rejects_bad_tokens(spec, fragment):
    with pytest.raises(ImpairSpecError) as excinfo:
        parse_impair_spec(spec)
    assert fragment in str(excinfo.value)


def test_build_pipelines_direction_split():
    up, down = build_pipelines("loss:p=0.1,dir=up")
    assert up is not None and down is None
    up, down = build_pipelines("loss:p=0.1")
    assert up is not None and down is not None
    assert build_pipelines("") == (None, None)


# ------------------------------------------------------------- determinism


def _drive(pipeline, count=600, size=120, dt=0.002):
    delivered = 0
    for i in range(count):
        delivered += len(pipeline.submit(b"\x55" * size, i * dt))
    delivered += len(pipeline.pump(count * dt + 3600.0))
    return delivered


def test_same_seed_same_fates_and_counters():
    spec = "ge:p=0.2,burst=5;reorder:p=0.1,gap=3;dup:p=0.1;corrupt:p=0.05"
    a = ImpairmentPipeline(parse_impair_spec(spec), "up", seed=7)
    b = ImpairmentPipeline(parse_impair_spec(spec), "up", seed=7)
    delivered_a = _drive(a)
    delivered_b = _drive(b)
    assert a.fates == b.fates
    assert dict(a.counters) == dict(b.counters)
    assert delivered_a == delivered_b
    assert a.fates, "the adversarial spec must actually impair something"


def test_different_seed_different_fates():
    spec = parse_impair_spec("loss:p=0.3")
    a = ImpairmentPipeline(spec, "up", seed=1)
    b = ImpairmentPipeline(spec, "up", seed=2)
    _drive(a)
    _drive(b)
    assert a.fates != b.fates


def test_direction_decorrelates_fates():
    spec = parse_impair_spec("loss:p=0.3")
    up = ImpairmentPipeline(spec, "up", seed=1)
    down = ImpairmentPipeline(spec, "down", seed=1)
    _drive(up)
    _drive(down)
    assert up.fates != down.fates


def test_replay_determinism_check_passes_and_catches_tampering():
    pipeline = ImpairmentPipeline(
        parse_impair_spec("ge:p=0.15,burst=4;dup:p=0.1"), "up", seed=3
    )
    _drive(pipeline)
    assert pipeline.replay_determinism_check()
    pipeline.counters["drop:ge"] += 1  # simulated corruption of the record
    assert not pipeline.replay_determinism_check()


# ----------------------------------------------------------- stage behavior


def test_loss_stage_statistics():
    pipeline = ImpairmentPipeline(parse_impair_spec("loss:p=0.25"), "up", seed=0)
    delivered = _drive(pipeline, count=2000)
    assert 2000 * 0.65 < delivered < 2000 * 0.85
    assert pipeline.counters["drop:loss"] == 2000 - delivered


def test_ge_stage_drops_in_bursts():
    pipeline = ImpairmentPipeline(parse_impair_spec("ge:p=0.2,burst=8"), "up", seed=0)
    fates_by_index = set()
    for i in range(4000):
        if not pipeline.submit(b"x" * 50, i * 0.001):
            fates_by_index.add(i)
    loss_rate = len(fates_by_index) / 4000
    assert 0.1 < loss_rate < 0.35  # stationary rate near p
    # burstiness: a dropped datagram's successor is dropped far more often
    # than the stationary rate would predict
    followers = sum(1 for i in fates_by_index if i + 1 in fates_by_index)
    assert followers / max(1, len(fates_by_index)) > 0.5


def test_reorder_stage_holds_and_releases_by_gap():
    pipeline = ImpairmentPipeline(
        [StageSpec("reorder", (("p", 0.999999), ("gap", 2.0), ("hold", 50.0)))],
        "up",
        seed=0,
    )
    pipeline.start(0.0)
    assert pipeline.submit(b"first", 0.0) == []  # held (p ~ 1)
    assert pipeline.pending == 1
    # after two more datagrams pass, the held one re-enters the stream
    # (submit cascades a pump, so release can ride a later submission)
    released = list(pipeline.submit(b"second", 0.01))
    released += pipeline.submit(b"third", 0.02)
    released += pipeline.pump(0.03)
    assert b"first" in released


def test_reorder_stage_hold_backstop_releases_on_time():
    pipeline = ImpairmentPipeline(
        [StageSpec("reorder", (("p", 0.999999), ("gap", 100.0), ("hold", 0.05)))],
        "up",
        seed=0,
    )
    pipeline.start(0.0)
    pipeline.submit(b"lonely", 0.0)
    assert pipeline.pump(0.01) == []  # neither gap nor hold satisfied
    deadline = pipeline.next_deadline()
    assert deadline == pytest.approx(0.05)
    assert pipeline.pump(0.06) == [b"lonely"]  # wall-clock backstop


def test_corrupt_stage_mutates_but_preserves_length():
    pipeline = ImpairmentPipeline(
        [StageSpec("corrupt", (("p", 0.999999),))], "up", seed=0
    )
    pipeline.start(0.0)
    original = bytes(range(64))
    (mutated,) = pipeline.submit(original, 0.0)
    assert mutated != original
    assert len(mutated) == len(original)
    assert sum(1 for a, b in zip(mutated, original) if a != b) == 1


def test_rate_stage_paces_and_bounds_queue():
    # 8000 bps => a 100-byte datagram costs 0.1 s of budget
    pipeline = ImpairmentPipeline(
        [StageSpec("rate", (("bps", 8000.0), ("queue", 150.0)))], "up", seed=0
    )
    pipeline.start(0.0)
    assert pipeline.submit(b"a" * 100, 0.0) == [b"a" * 100]  # bucket empty: immediate
    assert pipeline.submit(b"b" * 100, 0.01) == []  # throttled into the queue
    assert pipeline.submit(b"c" * 100, 0.02) == []  # queue full (150 B): dropped
    assert pipeline.counters["drop:rate"] == 1
    assert pipeline.pump(0.05) == []
    assert pipeline.pump(0.11) == [b"b" * 100]


def test_blackout_stage_window_is_exact():
    ring = EventRing()
    pipeline = ImpairmentPipeline(
        parse_impair_spec("blackout:at=1s,len=0.5s"), "up", seed=0, ring=ring
    )
    pipeline.start(0.0)
    fates = {}
    for t in (0.5, 0.99, 1.0, 1.25, 1.49, 1.5, 2.0):
        fates[t] = bool(pipeline.submit(b"x", t))
    assert fates == {0.5: True, 0.99: True, 1.0: False, 1.25: False,
                     1.49: False, 1.5: True, 2.0: True}
    assert ring.counts["blackout_enter"] == 1
    assert ring.counts["blackout_exit"] == 1


# ------------------------------------------------- lifecycle helper classes


def test_event_ring_counts_survive_wraparound():
    ring = EventRing(limit=8)
    for i in range(100):
        ring.record(float(i), "tick")
    assert len(ring) == 8
    assert ring.counts["tick"] == 100
    assert ring.first_seen["tick"] == 0.0
    assert ring.last_seen["tick"] == 99.0
    assert [e.t for e in ring.tail(3)] == [97.0, 98.0, 99.0]
    assert EVENT_RING_LIMIT >= 8


def test_quarantine_silences_garbage_only_sources():
    quarantine = PeerQuarantine()
    garbage = ("10.0.0.1", 1111)
    legit = ("10.0.0.2", 2222)
    quarantine.note_valid(legit)
    crossed = [quarantine.note_malformed(garbage) for _ in range(QUARANTINE_THRESHOLD)]
    assert crossed.count(True) == 1 and crossed[-1]
    assert quarantine.is_quarantined(garbage)
    assert quarantine.drops == 1
    # a peer with even one valid frame is never quarantined, however many
    # of its datagrams arrive corrupted
    for _ in range(10 * QUARANTINE_THRESHOLD):
        assert not quarantine.note_malformed(legit)
    assert not quarantine.is_quarantined(legit)
    assert quarantine.quarantined_peers == 1


# --------------------------------------------- reorder+dup vs ReorderWindow


@settings(max_examples=60, deadline=None)
@given(
    count=st.integers(min_value=1, max_value=120),
    reorder_p=st.floats(min_value=0.0, max_value=0.9),
    dup_p=st.floats(min_value=0.0, max_value=0.9),
    gap=st.integers(min_value=1, max_value=10),
    seed=st.integers(min_value=0, max_value=2**16),
)
def test_reorder_dup_interaction_with_reorder_window(count, reorder_p, dup_p, gap, seed):
    """Whatever reorder+dup emit, the receiver window recovers exactly once each.

    Wire seqs ride through the pipeline as two-byte payloads; the window
    must accept each seq exactly once (duplicates counted, none lost —
    these stages never drop) and every emitted seq must satisfy
    ``seq_in_window`` relative to the ack point at its arrival or be a
    duplicate.
    """
    spec = [
        StageSpec("reorder", (("p", reorder_p), ("gap", float(gap)), ("hold", 1000.0))),
        StageSpec("dup", (("p", dup_p),)),
    ]
    pipeline = ImpairmentPipeline(spec, "up", seed=seed)
    pipeline.start(0.0)
    emitted = []
    for seq in range(count):
        emitted.extend(pipeline.submit(seq.to_bytes(2, "big"), seq * 0.001))
    emitted.extend(pipeline.pump(count * 0.001 + 10_000.0))
    assert pipeline.pending == 0

    window = ReorderWindow(first_seq=0)
    for datagram in emitted:
        seq = int.from_bytes(datagram, "big")
        in_window_before = seq_in_window(seq, window.ack_seq, 2**15)
        accepted = window.accept(seq)
        if accepted:
            assert in_window_before
    # nothing dropped: every seq delivered at least once, accepted exactly once
    assert window.unique_accepted == count
    assert window.ack_seq == count
    assert window.missing == 0
    dups = pipeline.counters.get("dup:dup", 0)
    assert len(emitted) == count + dups
    assert window.duplicates == dups
