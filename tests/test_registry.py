"""Tests for the scheme registry."""

import pytest

from repro.baselines.base import AckingReceiver
from repro.baselines.cubic import CubicSender
from repro.core.receiver import SproutReceiver
from repro.core.sender import SproutSender
from repro.experiments.registry import (
    FIGURE7_SCHEMES,
    INTRO_TABLE_SCHEMES,
    SCHEMES,
    get_scheme,
    scheme_names,
    sprout_with_confidence,
)


def test_paper_schemes_all_registered():
    for name in (
        "Sprout", "Sprout-EWMA", "Cubic", "Cubic-CoDel", "Vegas",
        "Compound TCP", "LEDBAT", "Skype", "Google Hangout", "Facetime",
    ):
        assert name in SCHEMES


def test_figure7_schemes_subset_of_registry():
    assert set(FIGURE7_SCHEMES) <= set(scheme_names())
    assert set(INTRO_TABLE_SCHEMES) <= set(scheme_names())
    assert "Cubic-CoDel" in INTRO_TABLE_SCHEMES


def test_get_scheme_unknown_raises_with_choices():
    with pytest.raises(KeyError, match="Sprout"):
        get_scheme("QUIC")


def test_sprout_factory_builds_fresh_endpoints():
    spec = get_scheme("Sprout")
    sender1, receiver1 = spec.factory()
    sender2, receiver2 = spec.factory()
    assert isinstance(sender1, SproutSender)
    assert isinstance(receiver1, SproutReceiver)
    assert sender1 is not sender2 and receiver1 is not receiver2


def test_cubic_codel_differs_only_by_queue_discipline():
    plain = get_scheme("Cubic")
    codel = get_scheme("Cubic-CoDel")
    assert not plain.use_codel
    assert codel.use_codel
    sender, receiver = codel.factory()
    assert isinstance(sender, CubicSender)
    assert isinstance(receiver, AckingReceiver)


def test_videoconference_schemes_categorised():
    assert get_scheme("Skype").category == "videoconference"
    assert get_scheme("Sprout").category == "sprout"
    assert get_scheme("Vegas").category == "tcp"


def test_sprout_with_confidence_builds_named_spec():
    spec = sprout_with_confidence(0.5)
    assert spec.name == "Sprout (50%)"
    sender, receiver = spec.factory()
    assert receiver.forecaster.confidence == pytest.approx(0.5)
