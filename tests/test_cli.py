"""Tests for the command-line interface."""

import pytest

from repro.cli import build_parser, main
from repro.traces.format import read_trace


def test_parser_knows_all_commands():
    parser = build_parser()
    for command in ("run", "figure", "table", "report", "sweep", "trace", "list", "live"):
        args = parser.parse_args([command] + _minimal_args(command))
        assert args.command == command


def _minimal_args(command):
    return {
        "run": ["Sprout", "Verizon LTE downlink"],
        "figure": ["1"],
        "table": ["intro"],
        "report": [],
        "sweep": ["--param", "loss", "--values", "0", "0.01"],
        "trace": ["Verizon LTE downlink", "/tmp/ignored.txt"],
        "list": [],
        "live": [],
    }[command]


def test_list_command(capsys):
    assert main(["list"]) == 0
    out = capsys.readouterr().out
    assert "Sprout" in out
    assert "Verizon LTE downlink" in out


def test_run_command_prints_metrics(capsys):
    code = main(["run", "Vegas", "AT&T LTE uplink", "--duration", "12", "--warmup", "3"])
    assert code == 0
    out = capsys.readouterr().out
    assert "throughput" in out
    assert "self-inflicted delay" in out


def test_trace_command_writes_file(tmp_path, capsys):
    path = tmp_path / "trace.txt"
    code = main(["trace", "AT&T LTE uplink", str(path), "--duration", "10"])
    assert code == 0
    trace = read_trace(path)
    assert len(trace) > 50
    assert trace == sorted(trace)


def test_unknown_figure_number_fails(capsys):
    code = main(["figure", "3", "--duration", "10", "--warmup", "2"])
    assert code == 2


def test_unknown_scheme_rejected_by_argparse():
    with pytest.raises(SystemExit):
        main(["run", "QUIC", "Verizon LTE downlink"])


def test_list_command_names_sweep_parameters(capsys):
    assert main(["list"]) == 0
    out = capsys.readouterr().out
    assert "sweep parameters:" in out
    for name in ("loss", "sigma", "tick", "outage", "scale", "flows", "tunnelled"):
        assert name in out


def test_sweep_command_single_parameter_keeps_sweep_output(capsys):
    code = main(
        [
            "sweep",
            "--param", "loss", "--values", "0", "0.05",
            "--schemes", "Vegas",
            "--links", "AT&T LTE uplink",
            "--duration", "6", "--warmup", "1", "--jobs", "1",
        ]
    )
    assert code == 0
    out = capsys.readouterr().out
    assert "Sweep — loss" in out
    assert "Frontier" not in out  # 1-D runs stay in the classic format
    assert out.count("Vegas") == 2


def test_sweep_command_multiple_parameters_form_a_grid(capsys):
    """Several --param flags are one Cartesian-product grid, not sweeps."""
    code = main(
        [
            "sweep",
            "--param", "loss", "--values", "0", "0.05",
            "--param", "outage", "--values", "1", "4",
            "--param", "scale", "--values", "1", "0.5",
            "--schemes", "Vegas",
            "--links", "AT&T LTE uplink",
            "--duration", "6", "--warmup", "1", "--jobs", "1",
        ]
    )
    assert code == 0
    out = capsys.readouterr().out
    assert "Grid — loss × outage × scale (2 × 2 × 2 = 8 points)" in out
    assert "loss = 0.05, outage = 4, scale = 0.5" in out
    assert "Frontier — throughput vs delay" in out
    # 8 grid rows + 8 frontier candidate rows
    assert out.count("Vegas") == 16


def test_sweep_command_exports_csv_and_json(tmp_path, capsys):
    from repro.experiments.exports import grid_data_from_json, parse_csv

    csv_path = tmp_path / "grid.csv"
    base = [
        "sweep",
        "--param", "loss", "--values", "0", "0.05",
        "--param", "scale", "--values", "1",
        "--schemes", "Vegas",
        "--links", "AT&T LTE uplink",
        "--duration", "6", "--warmup", "1", "--jobs", "1",
    ]
    code = main(base + ["--export", "csv", "--out", str(csv_path)])
    out = capsys.readouterr().out
    assert code == 0
    assert f"csv export written to {csv_path}" in out
    rows = parse_csv(csv_path.read_text())
    assert len(rows) == 2
    assert {row["loss"] for row in rows} == {0.0, 0.05}

    # without --out the payload lands on stdout
    code = main(base + ["--export", "json"])
    out = capsys.readouterr().out
    assert code == 0
    payload = out[out.index("{"):]
    data = grid_data_from_json(payload)
    assert data.spec.parameters == ("loss", "scale")


def test_sweep_command_per_flow_prints_flow_frontiers_and_exports_flow_rows(
    tmp_path, capsys
):
    from repro.experiments.exports import parse_csv

    csv_path = tmp_path / "aqm.csv"
    code = main(
        [
            "sweep",
            "--param", "aqm", "--values", "0", "1",
            "--param", "flows", "--values", "2",
            "--links", "AT&T LTE uplink",
            "--duration", "6", "--warmup", "1", "--jobs", "1",
            "--per-flow",
            "--export", "csv", "--out", str(csv_path),
        ]
    )
    out = capsys.readouterr().out
    assert code == 0
    assert "AT&T LTE uplink — per-flow" in out
    assert "skype" in out
    rows = parse_csv(csv_path.read_text())
    aggregate = [row for row in rows if row["flow_id"] is None]
    per_flow = [row for row in rows if row["flow_id"] is not None]
    assert len(aggregate) == 2  # one cell per aqm value
    assert {row["flow_id"] for row in per_flow} >= {"skype", "cubic-1"}
    for row in per_flow:
        assert row["flow_throughput_bps"] is not None
        assert row["throughput_bps"] is None


def test_sweep_command_per_flow_single_axis_still_prints_frontier(capsys):
    code = main(
        [
            "sweep",
            "--param", "flows", "--values", "2",
            "--links", "AT&T LTE uplink",
            "--duration", "6", "--warmup", "1", "--jobs", "1",
            "--per-flow",
        ]
    )
    out = capsys.readouterr().out
    assert code == 0
    # One-axis sweeps normally skip the frontier; --per-flow forces it so
    # the per-flow series are visible.
    assert "Frontier — throughput vs delay" in out
    assert "per-flow" in out


def test_sweep_command_requires_param(capsys):
    assert main(["sweep", "--duration", "6"]) == 2
    assert "at least one --param" in capsys.readouterr().err


def test_sweep_command_rejects_mismatched_values(capsys):
    code = main(
        ["sweep", "--param", "loss", "--param", "scale", "--values", "0", "0.1"]
    )
    assert code == 2
    assert "--values" in capsys.readouterr().err


def test_sweep_command_rejects_unknown_parameter():
    with pytest.raises(SystemExit):
        main(["sweep", "--param", "bandwidth", "--values", "1"])


def test_sweep_command_validates_every_axis_before_running_any(capsys):
    # A late axis's bad value must fail fast — before the grid's emulation
    # burns minutes of wall-clock.
    code = main(
        [
            "sweep",
            "--param", "loss", "--values", "0",
            "--param", "scale", "--values", "-1",
            "--schemes", "Vegas", "--links", "AT&T LTE uplink",
        ]
    )
    captured = capsys.readouterr()
    assert code == 2
    assert "scale must be positive" in captured.err
    assert "Sweep —" not in captured.out  # nothing was run or printed
    assert "Grid —" not in captured.out


def test_sweep_command_rejects_duplicate_axes(capsys):
    code = main(
        [
            "sweep",
            "--param", "loss", "--values", "0",
            "--param", "loss", "--values", "0.05",
            "--schemes", "Vegas", "--links", "AT&T LTE uplink",
        ]
    )
    assert code == 2
    assert "distinct" in capsys.readouterr().err


def test_sweep_command_reports_expander_errors_without_traceback(capsys):
    # sigma does not apply to Vegas; loss 1.5 is out of range — both are
    # user errors and must exit 2 with a message, not a traceback.
    code = main(["sweep", "--param", "sigma", "--values", "100", "--schemes", "Vegas"])
    assert code == 2
    assert "sweep error:" in capsys.readouterr().err
    code = main(["sweep", "--param", "loss", "--values", "1.5"])
    assert code == 2
    assert "loss rate" in capsys.readouterr().err


def test_sweep_command_out_requires_export(capsys):
    code = main(
        ["sweep", "--param", "loss", "--values", "0", "--out", "/tmp/grid.csv"]
    )
    assert code == 2
    assert "--out requires --export" in capsys.readouterr().err


# -------------------------------------------------------- exit-code matrix


def test_sweep_all_cells_failed_exits_nonzero(monkeypatch, capsys):
    """--on-error collect keeps a partially failed grid green, but a grid
    where *every* cell failed measured nothing and must not exit 0."""
    monkeypatch.setenv("REPRO_FAULT_SPEC", '[{"kind": "crash"}]')
    code = main(
        [
            "sweep",
            "--param", "loss", "--values", "0", "0.05",
            "--schemes", "Vegas",
            "--links", "AT&T LTE uplink",
            "--duration", "6", "--warmup", "1", "--jobs", "1",
            "--on-error", "collect",
        ]
    )
    captured = capsys.readouterr()
    assert code == 1
    assert "every cell failed" in captured.err
    assert "2 of 2 cells failed" in captured.err
    assert "FAILED" in captured.out  # the grid still rendered


def test_sweep_partial_failures_still_exit_zero(monkeypatch, capsys):
    """One healthy cell means measurements were produced: warn, exit 0."""
    monkeypatch.setenv(
        "REPRO_FAULT_SPEC", '[{"kind": "crash", "index": 0}]'
    )
    code = main(
        [
            "sweep",
            "--param", "loss", "--values", "0", "0.05",
            "--schemes", "Vegas",
            "--links", "AT&T LTE uplink",
            "--duration", "6", "--warmup", "1", "--jobs", "1",
            "--on-error", "collect",
        ]
    )
    captured = capsys.readouterr()
    assert code == 0
    assert "1 of 2 cells failed" in captured.err
    assert "every cell failed" not in captured.err


# ------------------------------------------------------- the live command


def test_live_out_requires_export(capsys):
    code = main(["live", "--out", "/tmp/live.csv"])
    assert code == 2
    assert "--out requires --export" in capsys.readouterr().err


def test_live_rejects_bad_knobs(capsys):
    # argparse-level validation: exit 2 with a usage message naming the
    # offending option, never a deep traceback out of LiveConfig.
    for argv in (
        ["live", "--loss", "1.5"],
        ["live", "--loss", "-0.1"],
        ["live", "--loss", "nope"],
        ["live", "--bytes", "0"],
        ["live", "--bytes", "-5"],
        ["live", "--repeats", "0"],
        ["live", "--deadline", "0"],
        ["live", "--deadline", "-2"],
        ["live", "--impair", "bogus:p=0.1"],
        ["live", "--impair", "ge:p=2"],
    ):
        with pytest.raises(SystemExit) as excinfo:
            main(argv)
        assert excinfo.value.code == 2
        err = capsys.readouterr().err
        assert "usage:" in err
        assert argv[1].lstrip("-") in err


@pytest.mark.transport
def test_live_command_runs_and_exports(tmp_path, capsys):
    from repro.experiments.exports import parse_csv as _parse_csv
    from repro.transport import sockets_available

    if not sockets_available():
        pytest.skip("loopback UDP sockets unavailable")
    out = tmp_path / "live.csv"
    code = main(
        [
            "live",
            "--bytes", "16384", "--repeats", "1",
            "--export", "csv", "--out", str(out),
        ]
    )
    captured = capsys.readouterr()
    assert code == 0
    assert "Live loopback" in captured.out
    rows = _parse_csv(out.read_text())
    assert len(rows) == 1
    assert rows[0]["scheme"] == "Sprout (live)"
