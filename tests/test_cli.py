"""Tests for the command-line interface."""

import pytest

from repro.cli import build_parser, main
from repro.traces.format import read_trace


def test_parser_knows_all_commands():
    parser = build_parser()
    for command in ("run", "figure", "table", "report", "trace", "list"):
        args = parser.parse_args([command] + _minimal_args(command))
        assert args.command == command


def _minimal_args(command):
    return {
        "run": ["Sprout", "Verizon LTE downlink"],
        "figure": ["1"],
        "table": ["intro"],
        "report": [],
        "trace": ["Verizon LTE downlink", "/tmp/ignored.txt"],
        "list": [],
    }[command]


def test_list_command(capsys):
    assert main(["list"]) == 0
    out = capsys.readouterr().out
    assert "Sprout" in out
    assert "Verizon LTE downlink" in out


def test_run_command_prints_metrics(capsys):
    code = main(["run", "Vegas", "AT&T LTE uplink", "--duration", "12", "--warmup", "3"])
    assert code == 0
    out = capsys.readouterr().out
    assert "throughput" in out
    assert "self-inflicted delay" in out


def test_trace_command_writes_file(tmp_path, capsys):
    path = tmp_path / "trace.txt"
    code = main(["trace", "AT&T LTE uplink", str(path), "--duration", "10"])
    assert code == 0
    trace = read_trace(path)
    assert len(trace) > 50
    assert trace == sorted(trace)


def test_unknown_figure_number_fails(capsys):
    code = main(["figure", "3", "--duration", "10", "--warmup", "2"])
    assert code == 2


def test_unknown_scheme_rejected_by_argparse():
    with pytest.raises(SystemExit):
        main(["run", "QUIC", "Verizon LTE downlink"])
