"""Tests for the command-line interface."""

import pytest

from repro.cli import build_parser, main
from repro.traces.format import read_trace


def test_parser_knows_all_commands():
    parser = build_parser()
    for command in ("run", "figure", "table", "report", "sweep", "trace", "list"):
        args = parser.parse_args([command] + _minimal_args(command))
        assert args.command == command


def _minimal_args(command):
    return {
        "run": ["Sprout", "Verizon LTE downlink"],
        "figure": ["1"],
        "table": ["intro"],
        "report": [],
        "sweep": ["--param", "loss", "--values", "0", "0.01"],
        "trace": ["Verizon LTE downlink", "/tmp/ignored.txt"],
        "list": [],
    }[command]


def test_list_command(capsys):
    assert main(["list"]) == 0
    out = capsys.readouterr().out
    assert "Sprout" in out
    assert "Verizon LTE downlink" in out


def test_run_command_prints_metrics(capsys):
    code = main(["run", "Vegas", "AT&T LTE uplink", "--duration", "12", "--warmup", "3"])
    assert code == 0
    out = capsys.readouterr().out
    assert "throughput" in out
    assert "self-inflicted delay" in out


def test_trace_command_writes_file(tmp_path, capsys):
    path = tmp_path / "trace.txt"
    code = main(["trace", "AT&T LTE uplink", str(path), "--duration", "10"])
    assert code == 0
    trace = read_trace(path)
    assert len(trace) > 50
    assert trace == sorted(trace)


def test_unknown_figure_number_fails(capsys):
    code = main(["figure", "3", "--duration", "10", "--warmup", "2"])
    assert code == 2


def test_unknown_scheme_rejected_by_argparse():
    with pytest.raises(SystemExit):
        main(["run", "QUIC", "Verizon LTE downlink"])


def test_list_command_names_sweep_parameters(capsys):
    assert main(["list"]) == 0
    out = capsys.readouterr().out
    assert "sweep parameters:" in out
    for name in ("loss", "sigma", "tick", "outage", "scale"):
        assert name in out


def test_sweep_command_three_parameters_end_to_end(capsys):
    """A ≥3-parameter sweep through the real CLI entry point."""
    code = main(
        [
            "sweep",
            "--param", "loss", "--values", "0", "0.05",
            "--param", "outage", "--values", "1", "4",
            "--param", "scale", "--values", "1", "0.5",
            "--schemes", "Vegas",
            "--links", "AT&T LTE uplink",
            "--duration", "6", "--warmup", "1", "--jobs", "1",
        ]
    )
    assert code == 0
    out = capsys.readouterr().out
    assert "Sweep — loss" in out
    assert "Sweep — outage" in out
    assert "Sweep — scale" in out
    assert out.count("Vegas") == 6  # two values per parameter


def test_sweep_command_requires_param(capsys):
    assert main(["sweep", "--duration", "6"]) == 2
    assert "at least one --param" in capsys.readouterr().err


def test_sweep_command_rejects_mismatched_values(capsys):
    code = main(
        ["sweep", "--param", "loss", "--param", "scale", "--values", "0", "0.1"]
    )
    assert code == 2
    assert "--values" in capsys.readouterr().err


def test_sweep_command_rejects_unknown_parameter():
    with pytest.raises(SystemExit):
        main(["sweep", "--param", "bandwidth", "--values", "1"])


def test_sweep_command_validates_every_sweep_before_running_any(capsys):
    # The second sweep's bad value must fail fast — before the first
    # sweep's emulation burns minutes of wall-clock.
    code = main(
        [
            "sweep",
            "--param", "loss", "--values", "0",
            "--param", "loss", "--values", "1.5",
            "--schemes", "Vegas", "--links", "AT&T LTE uplink",
        ]
    )
    captured = capsys.readouterr()
    assert code == 2
    assert "loss rate" in captured.err
    assert "Sweep —" not in captured.out  # nothing was run or printed


def test_sweep_command_reports_expander_errors_without_traceback(capsys):
    # sigma does not apply to Vegas; loss 1.5 is out of range — both are
    # user errors and must exit 2 with a message, not a traceback.
    code = main(["sweep", "--param", "sigma", "--values", "100", "--schemes", "Vegas"])
    assert code == 2
    assert "sweep error:" in capsys.readouterr().err
    code = main(["sweep", "--param", "loss", "--values", "1.5"])
    assert code == 2
    assert "loss rate" in capsys.readouterr().err
